"""The memory controller (MC): the server half of the SoftCache.

The MC owns the full program image — it *is* the lower level of the
memory hierarchy — and services misses: given an original address it
chunks, rewrites and ships the code.  All heavy lifting (scanning,
rewriting) happens here, on the unconstrained server, shifting cost
away from the embedded client exactly as the paper argues.

Chunks are cached MC-side so repeated misses on the same address (after
eviction) are served from the MC's table; the paper notes the MC's
lookup/preparation time "could easily be reduced to near zero by more
powerful MC systems", so the cost model charges a small fixed
``mc_service_cycles`` per request either way.  Alongside each chunk the
MC caches its **pre-encoded payload bytes** (the position-independent
body as it crosses the wire), so re-serving an evicted chunk is a dict
hit plus a buffer handoff, and the CC can install with one patch pass
over a local ``bytearray``.

The MC also maintains a **static chunk-successor graph** (fallthrough,
taken-branch and call targets, recorded as chunks are built).  With
``prefetch_depth > 0`` the CC asks for a *batch*: the demanded chunk
plus up to N non-resident successors shipped in one reply, amortizing
the per-exchange protocol overhead — the standard instruction-prefetch
lever applied to the paper's "could easily be reduced to near zero"
miss-service cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..asm.image import Image
from .chunks import (
    BasicBlockChunker,
    Chunk,
    ChunkError,
    EBBChunker,
    ProcedureChunker,
)


@dataclass
class MCStats:
    """Server-side service counters."""

    requests: int = 0
    chunks_built: int = 0
    chunk_cache_hits: int = 0
    bytes_served: int = 0
    #: Batched (prefetching) requests serviced.
    batch_requests: int = 0
    #: Chunks shipped speculatively inside batched replies.
    prefetch_chunks_sent: int = 0
    #: Payload bytes of those speculative chunks.
    prefetch_bytes_served: int = 0
    data_requests: int = 0
    data_bytes_served: int = 0
    writebacks: int = 0
    writeback_bytes: int = 0
    #: Crash-restart epochs survived (fault injection): each one wipes
    #: the server-side chunk/payload caches and the successor graph.
    restarts: int = 0


class MemoryController:
    """Server-side miss service: chunking + dynamic binary rewriting."""

    def __init__(self, image: Image, granularity: str = "block",
                 ebb_limit: int = 8):
        if granularity == "block":
            self.chunker = BasicBlockChunker(image)
        elif granularity == "ebb":
            self.chunker = EBBChunker(image, limit=ebb_limit)
        elif granularity == "proc":
            self.chunker = ProcedureChunker(image)
        else:
            raise ValueError(f"unknown granularity {granularity!r}")
        self.image = image
        self.granularity = granularity
        self.stats = MCStats()
        #: Flight recorder (repro.obs), attached by the system; the
        #: fleet rebinds it per simulated client (runs are sequential).
        self.tracer = None
        self._chunk_cache: dict[int, Chunk] = {}
        #: Pre-encoded body bytes per chunk (what the CC installs).
        self._payload_cache: dict[int, bytes] = {}
        #: Static successor graph: orig -> successor origs, recorded as
        #: chunks are built (chunk content is static, so is the graph).
        self._successors: dict[int, tuple[int, ...]] = {}
        #: Successor addresses that failed to chunk (mid-procedure
        #: entries under proc granularity, targets outside text);
        #: remembered so batches do not retry them on every miss.
        self._unchunkable: set[int] = set()
        #: CRC32 of each chunk's payload, carried in the reply header
        #: so the client can reject corrupted deliveries (fault layer).
        self._checksum_cache: dict[int, int] = {}
        #: Optional data-access rewriter (full-system mode, §3).
        self.data_rewriter = None

    # -- chunk production ---------------------------------------------

    def _obtain(self, orig_addr: int) -> Chunk:
        """Chunk-cache lookup/build without request accounting."""
        chunk = self._chunk_cache.get(orig_addr)
        if chunk is None:
            chunk = self.chunker.chunk_at(orig_addr)
            if self.data_rewriter is not None:
                chunk = self.data_rewriter.transform(chunk)
            self._chunk_cache[orig_addr] = chunk
            self._successors[orig_addr] = chunk.successors
            self.stats.chunks_built += 1
            if self.tracer is not None:
                self.tracer.emit("mc.rewrite", "mc", orig=orig_addr,
                                 words=len(chunk.words),
                                 exits=len(chunk.exits))
        return chunk

    def payload_of(self, chunk: Chunk) -> bytes:
        """The chunk's pre-encoded body bytes (cached server-side)."""
        payload = self._payload_cache.get(chunk.orig)
        if payload is None:
            payload = b"".join(
                w.to_bytes(4, "little") for w in chunk.words)
            self._payload_cache[chunk.orig] = payload
        return payload

    def checksum_of(self, chunk: Chunk) -> int:
        """The integrity word the reply header carries for *chunk*:
        CRC32 over the pre-encoded payload, cached server-side."""
        checksum = self._checksum_cache.get(chunk.orig)
        if checksum is None:
            from ..net.faults import chunk_checksum
            checksum = chunk_checksum(self.payload_of(chunk))
            self._checksum_cache[chunk.orig] = checksum
        return checksum

    def successors_of(self, orig_addr: int) -> tuple[int, ...]:
        """Static successors of the chunk at *orig_addr* (builds the
        chunk if the graph has no node for it yet)."""
        succ = self._successors.get(orig_addr)
        if succ is None:
            succ = self._obtain(orig_addr).successors
        return succ

    # -- miss service -------------------------------------------------

    def serve_chunk(self, orig_addr: int) -> Chunk:
        """Service one instruction miss: return the rewritten chunk."""
        self.stats.requests += 1
        cached = orig_addr in self._chunk_cache
        chunk = self._obtain(orig_addr)
        if cached:
            self.stats.chunk_cache_hits += 1
        self.stats.bytes_served += chunk.payload_bytes
        if self.tracer is not None:
            self.tracer.emit("mc.serve", "mc", orig=orig_addr,
                             bytes=chunk.payload_bytes, cached=cached)
        return chunk

    def serve_batch(self, orig_addr: int, depth: int,
                    is_resident: Callable[[int], bool]
                    ) -> list[tuple[Chunk, bytes]]:
        """Service a miss with successor prefetch: one batched reply.

        Returns ``[(chunk, payload_bytes), ...]`` — the demanded chunk
        first, then up to *depth* additional chunks discovered by a
        breadth-first walk of the successor graph, skipping anything
        *is_resident* reports the client already holds.  With
        ``depth == 0`` the reply is exactly ``serve_chunk``'s.
        """
        demand = self.serve_chunk(orig_addr)
        batch = [(demand, self.payload_of(demand))]
        if depth <= 0:
            return batch
        self.stats.batch_requests += 1
        picked = {orig_addr}
        frontier = list(demand.successors)
        seen = set(frontier) | picked
        while frontier and len(batch) <= depth:
            addr = frontier.pop(0)
            if addr in self._unchunkable:
                continue
            if not is_resident(addr):
                try:
                    chunk = self._obtain(addr)
                except ChunkError:
                    self._unchunkable.add(addr)
                    continue
                batch.append((chunk, self.payload_of(chunk)))
                picked.add(addr)
                self.stats.prefetch_chunks_sent += 1
                self.stats.prefetch_bytes_served += chunk.payload_bytes
                self.stats.bytes_served += chunk.payload_bytes
            try:
                successors = self.successors_of(addr)
            except ChunkError:
                self._unchunkable.add(addr)
                continue
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        if self.tracer is not None:
            self.tracer.emit(
                "mc.batch", "mc", orig=orig_addr, chunks=len(batch),
                prefetch_bytes=sum(c.payload_bytes
                                   for c, _ in batch[1:]))
        return batch

    def prefetch_one(self, addr: int) -> tuple[Chunk, bytes]:
        """Produce one speculative chunk for a batched reply.

        Same accounting as the prefetch arm of :meth:`serve_batch`;
        split out so a sharded tier can route each prefetched chunk to
        its owning shard while keeping the walk logic in one place.
        Raises :class:`ChunkError` if the address cannot be chunked.
        """
        chunk = self._obtain(addr)
        payload = self.payload_of(chunk)
        self.stats.prefetch_chunks_sent += 1
        self.stats.prefetch_bytes_served += chunk.payload_bytes
        self.stats.bytes_served += chunk.payload_bytes
        return chunk, payload

    def serve_data(self, addr: int, length: int) -> bytes:
        """Service a data miss (software D-cache refill, §3)."""
        self.stats.data_requests += 1
        self.stats.data_bytes_served += length
        return self._server_memory_read(addr, length)

    def accept_writeback(self, addr: int, data: bytes) -> None:
        """Accept a dirty D-cache block writeback."""
        self.stats.writebacks += 1
        self.stats.writeback_bytes += len(data)
        self._server_memory_write(addr, data)

    # The MC's copy of data memory: backed by the image initially; the
    # D-cache system replaces these hooks with its server-memory store.
    _server_read_hook = None
    _server_write_hook = None

    def _server_memory_read(self, addr: int, length: int) -> bytes:
        if self._server_read_hook is not None:
            return self._server_read_hook(addr, length)
        raise ChunkError("no server data store attached")

    def _server_memory_write(self, addr: int, data: bytes) -> None:
        if self._server_write_hook is not None:
            self._server_write_hook(addr, data)
            return
        raise ChunkError("no server data store attached")

    def invalidate_chunks(self, addr: int, length: int) -> int:
        """Drop cached chunks overlapping [addr, addr+length).

        Called when the client declares code rewritten (the explicit
        self-modifying-code contract of §2.1).  Returns the number of
        chunks dropped.
        """
        stale = [orig for orig, chunk in self._chunk_cache.items()
                 if orig < addr + length and addr < orig + chunk.orig_size]
        for orig in stale:
            del self._chunk_cache[orig]
            self._payload_cache.pop(orig, None)
            self._checksum_cache.pop(orig, None)
            self._successors.pop(orig, None)
        self._unchunkable.clear()
        return len(stale)

    def restart(self) -> None:
        """Simulate an MC crash-restart (fault injection).

        The program image is durable but every server-side cache comes
        back cold: chunks, payloads, checksums, the successor graph
        and the unchunkable set are all rebuilt on demand.  Rewriting
        is deterministic, so the rebuilt chunks are byte-identical —
        the client only pays extra service time, never sees different
        code.
        """
        self._chunk_cache.clear()
        self._payload_cache.clear()
        self._checksum_cache.clear()
        self._successors.clear()
        self._unchunkable.clear()
        self.stats.restarts += 1
        if self.tracer is not None:
            self.tracer.emit("mc.restart", "mc")
