"""The memory controller (MC): the server half of the SoftCache.

The MC owns the full program image — it *is* the lower level of the
memory hierarchy — and services misses: given an original address it
chunks, rewrites and ships the code.  All heavy lifting (scanning,
rewriting) happens here, on the unconstrained server, shifting cost
away from the embedded client exactly as the paper argues.

Chunks are cached MC-side so repeated misses on the same address (after
eviction) are served from the MC's table; the paper notes the MC's
lookup/preparation time "could easily be reduced to near zero by more
powerful MC systems", so the cost model charges a small fixed
``mc_service_cycles`` per request either way.  Alongside each chunk the
MC caches its **pre-encoded payload bytes** (the position-independent
body as it crosses the wire), so re-serving an evicted chunk is a dict
hit plus a buffer handoff, and the CC can install with one patch pass
over a local ``bytearray``.

The MC also maintains a **static chunk-successor graph** (fallthrough,
taken-branch and call targets, recorded as chunks are built).  With
``prefetch_depth > 0`` the CC asks for a *batch*: the demanded chunk
plus up to N non-resident successors shipped in one reply, amortizing
the per-exchange protocol overhead — the standard instruction-prefetch
lever applied to the paper's "could easily be reduced to near zero"
miss-service cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..asm.image import Image
from .chunks import (
    BasicBlockChunker,
    Chunk,
    ChunkError,
    EBBChunker,
    ProcedureChunker,
)
from .update import image_digest


@dataclass
class MCStats:
    """Server-side service counters."""

    requests: int = 0
    chunks_built: int = 0
    chunk_cache_hits: int = 0
    bytes_served: int = 0
    #: Batched (prefetching) requests serviced.
    batch_requests: int = 0
    #: Chunks shipped speculatively inside batched replies.
    prefetch_chunks_sent: int = 0
    #: Payload bytes of those speculative chunks.
    prefetch_bytes_served: int = 0
    data_requests: int = 0
    data_bytes_served: int = 0
    writebacks: int = 0
    writeback_bytes: int = 0
    #: Crash-restart epochs survived (fault injection): each one wipes
    #: the server-side chunk/payload caches and the successor graph.
    restarts: int = 0
    #: Image epochs published (live code update).
    publishes: int = 0
    #: Publishes that were idempotent no-ops (same content digest).
    publish_noops: int = 0
    #: Non-durable epochs rolled back by a crash-restart.
    publish_rollbacks: int = 0
    #: Requests resolved against a retired epoch (a client whose
    #: update gate has not opened yet, see UpdateSchedule).
    stale_serves: int = 0


@dataclass(frozen=True)
class ImageVersion:
    """One published image epoch."""

    epoch: int
    image: Image
    digest: str
    durable: bool = True
    #: Word-aligned ``[start, end)`` original-address spans whose text
    #: differs from the *previous* epoch; empty for the boot epoch.
    dirty_spans: tuple[tuple[int, int], ...] = ()

    @property
    def dirty_bytes(self) -> int:
        return sum(end - start for start, end in self.dirty_spans)


def _text_dirty_spans(old: Image,
                      new: Image) -> tuple[tuple[int, int], ...]:
    """Coalesced word spans where the two texts differ."""
    spans: list[list[int]] = []
    old_t, new_t, base = old.text, new.text, new.text_base
    for off in range(0, len(new_t), 4):
        if old_t[off:off + 4] != new_t[off:off + 4]:
            addr = base + off
            if spans and spans[-1][1] == addr:
                spans[-1][1] = addr + 4
            else:
                spans.append([addr, addr + 4])
    return tuple((s, e) for s, e in spans)


class MemoryController:
    """Server-side miss service: chunking + dynamic binary rewriting."""

    def __init__(self, image: Image, granularity: str = "block",
                 ebb_limit: int = 8, group: str = "default"):
        self.chunker = self._make_chunker(image, granularity, ebb_limit)
        self.image = image
        self.granularity = granularity
        self.ebb_limit = ebb_limit
        #: Tenant label: one MC/hub tier can serve several image
        #: groups; hub entries are keyed by (group, epoch, chunk).
        self.group = group
        #: Current image epoch; bumped by :meth:`publish`.
        self.epoch = 0
        #: Content digest of the current image (idempotence identity).
        self.image_digest = image_digest(image)
        self._versions: dict[int, ImageVersion] = {
            0: ImageVersion(0, image, self.image_digest, True, ())}
        #: Epoch the requesting client still runs at (reply resolution
        #: happens at ``min`` semantics client-side; ``None`` = current).
        #: Set by the CC before each serve; survives the probe/hub
        #: wrappers because it is attribute state on this object.
        self.client_epoch: int | None = None
        #: Epoch the last serve actually resolved against (the reply
        #: header's version tag; payload/checksum lookups follow it).
        self.last_served_epoch = 0
        self._stale_mc: dict[int, "MemoryController"] = {}
        self.stats = MCStats()
        #: Flight recorder (repro.obs), attached by the system; the
        #: fleet rebinds it per simulated client (runs are sequential).
        self.tracer = None
        self._chunk_cache: dict[int, Chunk] = {}
        #: Pre-encoded body bytes per chunk (what the CC installs).
        self._payload_cache: dict[int, bytes] = {}
        #: Static successor graph: orig -> successor origs, recorded as
        #: chunks are built (chunk content is static, so is the graph).
        self._successors: dict[int, tuple[int, ...]] = {}
        #: Successor addresses that failed to chunk (mid-procedure
        #: entries under proc granularity, targets outside text);
        #: remembered so batches do not retry them on every miss.
        self._unchunkable: set[int] = set()
        #: CRC32 of each chunk's payload, carried in the reply header
        #: so the client can reject corrupted deliveries (fault layer).
        self._checksum_cache: dict[int, int] = {}
        #: Optional data-access rewriter (full-system mode, §3).
        self.data_rewriter = None

    @staticmethod
    def _make_chunker(image: Image, granularity: str, ebb_limit: int):
        if granularity == "block":
            return BasicBlockChunker(image)
        if granularity == "ebb":
            return EBBChunker(image, limit=ebb_limit)
        if granularity == "proc":
            return ProcedureChunker(image)
        raise ValueError(f"unknown granularity {granularity!r}")

    # -- live code update ---------------------------------------------

    def knows_image(self, image: Image) -> bool:
        """True if *image* is some published version of this MC's
        program (identity or content match) — the shared-MC sanity
        check a client system runs at boot."""
        if image is self.image:
            return True
        digest = image_digest(image)
        return any(v.digest == digest for v in self._versions.values())

    def publish(self, new_image: Image, *, durable: bool = True) -> int:
        """Publish a new image epoch; returns the (possibly unchanged)
        current epoch.

        Idempotent by content digest: republishing the image already
        current is a no-op, so any number of per-client update
        schedules can assert the same publish against a shared MC.
        The update is a *hot patch*: layout must be preserved (same
        text base/size, data segment, entry point) because resident
        stubs and continuations hold original addresses.  A
        non-durable publish is rolled back by :meth:`restart` to the
        latest durable epoch.
        """
        digest = image_digest(new_image)
        if digest == self.image_digest:
            self.stats.publish_noops += 1
            return self.epoch
        old = self.image
        if (new_image.text_base != old.text_base
                or len(new_image.text) != len(old.text)
                or new_image.data_base != old.data_base
                or new_image.data != old.data
                or new_image.bss_size != old.bss_size
                or new_image.entry != old.entry):
            raise ValueError(
                "publish requires a layout-preserving image: same text "
                "base/size, data segment, bss size and entry point")
        spans = _text_dirty_spans(old, new_image)
        self.epoch += 1
        version = ImageVersion(self.epoch, new_image, digest,
                               durable, spans)
        self._versions[self.epoch] = version
        self.image = new_image
        self.image_digest = digest
        self.chunker = self._make_chunker(new_image, self.granularity,
                                          self.ebb_limit)
        self._chunk_cache.clear()
        self._payload_cache.clear()
        self._checksum_cache.clear()
        self._successors.clear()
        self._unchunkable.clear()
        self.stats.publishes += 1
        if self.tracer is not None:
            self.tracer.emit("mc.publish", "mc", epoch=self.epoch,
                             digest=digest[:12],
                             dirty_chunks=len(spans),
                             dirty_bytes=version.dirty_bytes,
                             durable=durable)
        return self.epoch

    def dirty_spans_between(self, a: int,
                            b: int) -> tuple[tuple[int, int], ...]:
        """Union of text spans that changed between epochs *a* and *b*
        (order-independent).  Falls back to the whole text segment if
        an intermediate version is no longer known (rolled back), so
        invalidation is conservative, never incomplete."""
        lo, hi = (a, b) if a <= b else (b, a)
        spans: list[tuple[int, int]] = []
        for epoch in range(lo + 1, hi + 1):
            version = self._versions.get(epoch)
            if version is None:
                img = self.image
                return ((img.text_base, img.text_end),)
            spans.extend(version.dirty_spans)
        return tuple(spans)

    def image_at(self, epoch: int) -> Image:
        """The image of a retained epoch (the update barrier patches
        the client text mirror from it)."""
        version = self._versions.get(epoch)
        if version is None:
            raise ChunkError(f"epoch {epoch} is not servable (retired)")
        return version.image

    def epoch_of_digest(self, digest: str) -> int | None:
        """Latest retained epoch whose image has *digest*, or None.

        Update schedules check this before publishing: on a shared MC
        a lagging client asserting a version some other client already
        published must *observe* that epoch, not re-publish it (which
        would roll the whole fleet back to the old image).
        """
        found = None
        for epoch, version in self._versions.items():
            if version.digest == digest and (found is None
                                             or epoch > found):
                found = epoch
        return found

    def epoch_servable(self, epoch: int) -> bool:
        """Can a request pinned at *epoch* still be resolved?"""
        return epoch == self.epoch or epoch in self._versions

    def version_info(self) -> dict:
        """Version store snapshot (``/inspect/images``)."""
        return {
            "group": self.group,
            "epoch": self.epoch,
            "image": self.image.name,
            "digest": self.image_digest,
            "versions": [
                {"epoch": v.epoch, "image": v.image.name,
                 "digest": v.digest, "durable": v.durable,
                 "dirty_spans": len(v.dirty_spans),
                 "dirty_bytes": v.dirty_bytes}
                for _, v in sorted(self._versions.items())],
        }

    def _stale_for_client(self) -> "MemoryController | None":
        """The serving MC for the requesting client's epoch: ``None``
        when the client is current (hot path), else a lazily built
        server over the retained older version."""
        epoch = self.client_epoch
        if epoch is None or epoch == self.epoch:
            self.last_served_epoch = self.epoch
            return None
        self.last_served_epoch = epoch
        server = self._stale_mc.get(epoch)
        if server is None:
            version = self._versions.get(epoch)
            if version is None:
                raise ChunkError(
                    f"epoch {epoch} is not servable (retired)")
            server = MemoryController(version.image, self.granularity,
                                      self.ebb_limit, group=self.group)
            server.data_rewriter = self.data_rewriter
            self._stale_mc[epoch] = server
        return server

    # -- chunk production ---------------------------------------------

    def _obtain(self, orig_addr: int) -> Chunk:
        """Chunk-cache lookup/build without request accounting."""
        chunk = self._chunk_cache.get(orig_addr)
        if chunk is None:
            chunk = self.chunker.chunk_at(orig_addr)
            if self.data_rewriter is not None:
                chunk = self.data_rewriter.transform(chunk)
            self._chunk_cache[orig_addr] = chunk
            self._successors[orig_addr] = chunk.successors
            self.stats.chunks_built += 1
            if self.tracer is not None:
                self.tracer.emit("mc.rewrite", "mc", orig=orig_addr,
                                 words=len(chunk.words),
                                 exits=len(chunk.exits))
        return chunk

    def payload_of(self, chunk: Chunk) -> bytes:
        """The chunk's pre-encoded body bytes (cached server-side,
        resolved at the epoch of the last serve)."""
        if self.last_served_epoch != self.epoch:
            return self._stale_mc[self.last_served_epoch].payload_of(
                chunk)
        payload = self._payload_cache.get(chunk.orig)
        if payload is None:
            payload = b"".join(
                w.to_bytes(4, "little") for w in chunk.words)
            self._payload_cache[chunk.orig] = payload
        return payload

    def checksum_of(self, chunk: Chunk) -> int:
        """The integrity word the reply header carries for *chunk*:
        CRC32 over the pre-encoded payload, cached server-side."""
        if self.last_served_epoch != self.epoch:
            return self._stale_mc[self.last_served_epoch].checksum_of(
                chunk)
        checksum = self._checksum_cache.get(chunk.orig)
        if checksum is None:
            from ..net.faults import chunk_checksum
            checksum = chunk_checksum(self.payload_of(chunk))
            self._checksum_cache[chunk.orig] = checksum
        return checksum

    def successors_of(self, orig_addr: int) -> tuple[int, ...]:
        """Static successors of the chunk at *orig_addr* (builds the
        chunk if the graph has no node for it yet)."""
        succ = self._successors.get(orig_addr)
        if succ is None:
            succ = self._obtain(orig_addr).successors
        return succ

    # -- miss service -------------------------------------------------

    def serve_chunk(self, orig_addr: int) -> Chunk:
        """Service one instruction miss: return the rewritten chunk."""
        stale = self._stale_for_client()
        if stale is not None:
            chunk = stale.serve_chunk(orig_addr)
            self.stats.requests += 1
            self.stats.stale_serves += 1
            self.stats.bytes_served += chunk.payload_bytes
            return chunk
        self.stats.requests += 1
        cached = orig_addr in self._chunk_cache
        chunk = self._obtain(orig_addr)
        if cached:
            self.stats.chunk_cache_hits += 1
        self.stats.bytes_served += chunk.payload_bytes
        if self.tracer is not None:
            self.tracer.emit("mc.serve", "mc", orig=orig_addr,
                             bytes=chunk.payload_bytes, cached=cached)
        return chunk

    def serve_batch(self, orig_addr: int, depth: int,
                    is_resident: Callable[[int], bool]
                    ) -> list[tuple[Chunk, bytes]]:
        """Service a miss with successor prefetch: one batched reply.

        Returns ``[(chunk, payload_bytes), ...]`` — the demanded chunk
        first, then up to *depth* additional chunks discovered by a
        breadth-first walk of the successor graph, skipping anything
        *is_resident* reports the client already holds.  With
        ``depth == 0`` the reply is exactly ``serve_chunk``'s.
        """
        stale = self._stale_for_client()
        if stale is not None:
            batch = stale.serve_batch(orig_addr, depth, is_resident)
            st = self.stats
            st.requests += 1
            st.stale_serves += 1
            st.bytes_served += sum(len(p) for _, p in batch)
            if depth > 0:
                st.batch_requests += 1
            return batch
        demand = self.serve_chunk(orig_addr)
        batch = [(demand, self.payload_of(demand))]
        if depth <= 0:
            return batch
        self.stats.batch_requests += 1
        picked = {orig_addr}
        frontier = list(demand.successors)
        seen = set(frontier) | picked
        while frontier and len(batch) <= depth:
            addr = frontier.pop(0)
            if addr in self._unchunkable:
                continue
            if not is_resident(addr):
                try:
                    chunk = self._obtain(addr)
                except ChunkError:
                    self._unchunkable.add(addr)
                    continue
                batch.append((chunk, self.payload_of(chunk)))
                picked.add(addr)
                self.stats.prefetch_chunks_sent += 1
                self.stats.prefetch_bytes_served += chunk.payload_bytes
                self.stats.bytes_served += chunk.payload_bytes
            try:
                successors = self.successors_of(addr)
            except ChunkError:
                self._unchunkable.add(addr)
                continue
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        if self.tracer is not None:
            self.tracer.emit(
                "mc.batch", "mc", orig=orig_addr, chunks=len(batch),
                prefetch_bytes=sum(c.payload_bytes
                                   for c, _ in batch[1:]))
        return batch

    def prefetch_one(self, addr: int) -> tuple[Chunk, bytes]:
        """Produce one speculative chunk for a batched reply.

        Same accounting as the prefetch arm of :meth:`serve_batch`;
        split out so a sharded tier can route each prefetched chunk to
        its owning shard while keeping the walk logic in one place.
        Raises :class:`ChunkError` if the address cannot be chunked.
        """
        stale = self._stale_for_client()
        if stale is not None:
            chunk, payload = stale.prefetch_one(addr)
            self.stats.prefetch_chunks_sent += 1
            self.stats.prefetch_bytes_served += chunk.payload_bytes
            self.stats.bytes_served += chunk.payload_bytes
            return chunk, payload
        chunk = self._obtain(addr)
        payload = self.payload_of(chunk)
        self.stats.prefetch_chunks_sent += 1
        self.stats.prefetch_bytes_served += chunk.payload_bytes
        self.stats.bytes_served += chunk.payload_bytes
        return chunk, payload

    def serve_data(self, addr: int, length: int) -> bytes:
        """Service a data miss (software D-cache refill, §3)."""
        self.stats.data_requests += 1
        self.stats.data_bytes_served += length
        return self._server_memory_read(addr, length)

    def accept_writeback(self, addr: int, data: bytes) -> None:
        """Accept a dirty D-cache block writeback."""
        self.stats.writebacks += 1
        self.stats.writeback_bytes += len(data)
        self._server_memory_write(addr, data)

    # The MC's copy of data memory: backed by the image initially; the
    # D-cache system replaces these hooks with its server-memory store.
    _server_read_hook = None
    _server_write_hook = None

    def _server_memory_read(self, addr: int, length: int) -> bytes:
        if self._server_read_hook is not None:
            return self._server_read_hook(addr, length)
        raise ChunkError("no server data store attached")

    def _server_memory_write(self, addr: int, data: bytes) -> None:
        if self._server_write_hook is not None:
            self._server_write_hook(addr, data)
            return
        raise ChunkError("no server data store attached")

    def invalidate_chunks(self, addr: int, length: int) -> int:
        """Drop cached chunks overlapping [addr, addr+length).

        Called when the client declares code rewritten (the explicit
        self-modifying-code contract of §2.1).  Returns the number of
        chunks dropped.
        """
        stale = [orig for orig, chunk in self._chunk_cache.items()
                 if orig < addr + length and addr < orig + chunk.orig_size]
        for orig in stale:
            del self._chunk_cache[orig]
            self._payload_cache.pop(orig, None)
            self._checksum_cache.pop(orig, None)
            self._successors.pop(orig, None)
        self._unchunkable.clear()
        for server in self._stale_mc.values():
            server.invalidate_chunks(addr, length)
        return len(stale)

    def restart(self) -> None:
        """Simulate an MC crash-restart (fault injection).

        Durable image versions survive but every server-side cache
        comes back cold: chunks, payloads, checksums, the successor
        graph and the unchunkable set are all rebuilt on demand.
        Rewriting is deterministic, so the rebuilt chunks are
        byte-identical — the client only pays extra service time,
        never sees different code.  Non-durable published epochs are
        rolled back: the MC comes back serving its latest *durable*
        epoch (clients above it re-assert their schedules or barrier
        back down).
        """
        dropped = [e for e, v in self._versions.items()
                   if not v.durable]
        for epoch in dropped:
            del self._versions[epoch]
        latest = max(self._versions)
        if latest != self.epoch:
            version = self._versions[latest]
            self.epoch = latest
            self.image = version.image
            self.image_digest = version.digest
            self.chunker = self._make_chunker(
                version.image, self.granularity, self.ebb_limit)
            self.stats.publish_rollbacks += 1
        self._stale_mc.clear()
        self._chunk_cache.clear()
        self._payload_cache.clear()
        self._checksum_cache.clear()
        self._successors.clear()
        self._unchunkable.clear()
        self.stats.restarts += 1
        if self.tracer is not None:
            self.tracer.emit("mc.restart", "mc")
