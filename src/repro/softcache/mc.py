"""The memory controller (MC): the server half of the SoftCache.

The MC owns the full program image — it *is* the lower level of the
memory hierarchy — and services misses: given an original address it
chunks, rewrites and ships the code.  All heavy lifting (scanning,
rewriting) happens here, on the unconstrained server, shifting cost
away from the embedded client exactly as the paper argues.

Chunks are cached MC-side so repeated misses on the same address (after
eviction) are served from the MC's table; the paper notes the MC's
lookup/preparation time "could easily be reduced to near zero by more
powerful MC systems", so the cost model charges a small fixed
``mc_service_cycles`` per request either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.image import Image
from .chunks import (
    BasicBlockChunker,
    Chunk,
    ChunkError,
    EBBChunker,
    ProcedureChunker,
)


@dataclass
class MCStats:
    """Server-side service counters."""

    requests: int = 0
    chunks_built: int = 0
    chunk_cache_hits: int = 0
    bytes_served: int = 0
    data_requests: int = 0
    data_bytes_served: int = 0
    writebacks: int = 0
    writeback_bytes: int = 0


class MemoryController:
    """Server-side miss service: chunking + dynamic binary rewriting."""

    def __init__(self, image: Image, granularity: str = "block",
                 ebb_limit: int = 8):
        if granularity == "block":
            self.chunker = BasicBlockChunker(image)
        elif granularity == "ebb":
            self.chunker = EBBChunker(image, limit=ebb_limit)
        elif granularity == "proc":
            self.chunker = ProcedureChunker(image)
        else:
            raise ValueError(f"unknown granularity {granularity!r}")
        self.image = image
        self.granularity = granularity
        self.stats = MCStats()
        self._chunk_cache: dict[int, Chunk] = {}
        #: Optional data-access rewriter (full-system mode, §3).
        self.data_rewriter = None

    def serve_chunk(self, orig_addr: int) -> Chunk:
        """Service one instruction miss: return the rewritten chunk."""
        self.stats.requests += 1
        chunk = self._chunk_cache.get(orig_addr)
        if chunk is None:
            chunk = self.chunker.chunk_at(orig_addr)
            if self.data_rewriter is not None:
                chunk = self.data_rewriter.transform(chunk)
            self._chunk_cache[orig_addr] = chunk
            self.stats.chunks_built += 1
        else:
            self.stats.chunk_cache_hits += 1
        self.stats.bytes_served += chunk.payload_bytes
        return chunk

    def serve_data(self, addr: int, length: int) -> bytes:
        """Service a data miss (software D-cache refill, §3)."""
        self.stats.data_requests += 1
        self.stats.data_bytes_served += length
        return self._server_memory_read(addr, length)

    def accept_writeback(self, addr: int, data: bytes) -> None:
        """Accept a dirty D-cache block writeback."""
        self.stats.writebacks += 1
        self.stats.writeback_bytes += len(data)
        self._server_memory_write(addr, data)

    # The MC's copy of data memory: backed by the image initially; the
    # D-cache system replaces these hooks with its server-memory store.
    _server_read_hook = None
    _server_write_hook = None

    def _server_memory_read(self, addr: int, length: int) -> bytes:
        if self._server_read_hook is not None:
            return self._server_read_hook(addr, length)
        raise ChunkError("no server data store attached")

    def _server_memory_write(self, addr: int, data: bytes) -> None:
        if self._server_write_hook is not None:
            self._server_write_hook(addr, data)
            return
        raise ChunkError("no server data store attached")

    def invalidate_chunks(self, addr: int, length: int) -> int:
        """Drop cached chunks overlapping [addr, addr+length).

        Called when the client declares code rewritten (the explicit
        self-modifying-code contract of §2.1).  Returns the number of
        chunks dropped.
        """
        stale = [orig for orig, chunk in self._chunk_cache.items()
                 if orig < addr + length and addr < orig + chunk.orig_size]
        for orig in stale:
            del self._chunk_cache[orig]
        return len(stale)
