"""Pluggable replacement/promotion policies for the translation cache.

The tcache is a circular FIFO allocator of variable-size blocks: code
is placed at a moving tail and reclaimed only from the head, because
every resident block is pinned in place by the patched branch words
that target it.  A policy therefore cannot pick an arbitrary victim —
the allocator forces the head block — but it *does* own every other
decision on the eviction/admission path:

* **prefetch admission** (:meth:`ReplacementPolicy.admit_prefetch`) —
  whether a non-resident successor chunk may ride a batched miss
  reply.  This is the real lever against the pollution
  ``BENCH_softcache.json`` shows at deep ``prefetch_depth`` on small
  tcaches: a rejected candidate is filtered at batch-assembly time,
  so its bytes are never even shipped over the link.
* **evict vs flush** (:meth:`ReplacementPolicy.on_evict_candidate`) —
  when space is needed, whether to retire the forced head victim or
  drop the whole cache at once (the Dynamo-style preemptive flush).
* **metadata/promotion tracking** (:meth:`on_install` /
  :meth:`on_hit` / :meth:`on_evict` / :meth:`on_flush`) — per-block
  or per-address state such as re-reference predictions and touch
  counts.

Four policies beyond the seed pair:

* ``fifo`` — the seed path as a policy object: every hook is a no-op
  and the admission predicate is the raw residency check, so a run is
  bit-identical to the baked-in implementation it replaced
  (``tests/test_eviction_equivalence.py`` pins this word for word).
* ``flush`` — the seed drop-everything policy: the first eviction
  candidate answers "flush".
* ``trrip`` — temperature-based re-reference interval prediction
  (TRRIP): blocks are seeded with an RRPV from the profiler's
  hot/warm/cold classification (:mod:`repro.profiling.temperature`),
  hits promote to RRPV 0, and cold-temperature prefetch candidates
  are rejected outright.  With ``preemptive_flush=True`` it also
  answers "flush" when the forced victim — and every other resident
  block — is protected (the working set simply does not fit, and
  piecemeal eviction would ping-pong).
* ``nhit`` — Open-CAS-style promotion: a chunk's original address
  must be touched (demand-installed or re-entered) ``n`` times before
  it earns prefetch admission.  Touch history deliberately persists
  across evictions and flushes — that is the whole point of the
  policy — and is cleared only by :meth:`reset` (admin resize).
* ``seqcutoff`` — sequential cutoff: installs are watched for
  sequential runs (chunk.orig picking up exactly where the previous
  install ended); once a run reaches the cutoff, prefetch candidates
  that would extend it are rejected (streaming code evicts itself
  before it is re-entered, so speculating on it is pure waste).

Policies only shape *which* chunks are speculatively resident and
*when* the cache is dropped — never what the program computes.  The
policy-differential tests pin that program output and exit code are
identical across every policy.  (Instruction counts are *not*
invariant: miss traps execute guest instructions, and the trap
pattern legitimately differs per policy.)
"""

from __future__ import annotations

from .records import TBlock

#: :meth:`ReplacementPolicy.on_evict_candidate` verdicts.
EVICT = "evict"
FLUSH = "flush"


class ReplacementPolicy:
    """Interface of an eviction/promotion policy (no-op defaults).

    The controller calls :meth:`bind` once at attach time; after that
    every hook may use ``self.cc`` (stats, tracer, tcache).  Hooks on
    the miss path must never charge simulated cycles themselves — the
    controller owns the cost model — and must never mutate blocks or
    the allocator; they own only their private metadata.
    """

    #: Registry name (overridden by subclasses).
    name = "base"
    #: True when :meth:`admit_prefetch` can reject: the controller
    #: then wraps the batch residency predicate.  False keeps the
    #: seed fast path (the raw bound method, zero indirection).
    filters_prefetch = False

    def __init__(self):
        self.cc = None

    def bind(self, cc) -> None:
        """Attach to a controller (stats/tracer/tcache access)."""
        self.cc = cc

    # -- lifecycle hooks ---------------------------------------------------

    def on_install(self, block: TBlock, *, prefetched: bool) -> None:
        """A chunk was installed (demand or speculative)."""

    def on_hit(self, block: TBlock) -> None:
        """A trap/patch re-entry found *block* resident (map hit)."""

    def on_evict_candidate(self, block: TBlock) -> str:
        """Space is needed and *block* is the allocator-forced victim.

        Return :data:`EVICT` to retire it or :data:`FLUSH` to drop
        the whole cache instead (the controller then stops evicting).
        """
        return EVICT

    def on_evict(self, block: TBlock) -> None:
        """*block* was retired; drop any metadata keyed on it."""

    def on_flush(self) -> None:
        """The whole cache was dropped; per-block metadata is stale."""

    # -- prefetch admission ------------------------------------------------

    def admit_prefetch(self, orig: int) -> bool:
        """May the non-resident chunk at *orig* ride a batched reply?

        Consulted at batch-assembly time (a rejection saves the link
        bytes, not just the install).  Only called when
        :attr:`filters_prefetch` is True.
        """
        return True

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Admin resize: clear *all* metadata, including any
        per-address history that survives ordinary flushes."""
        self.on_flush()

    def snapshot(self) -> dict:
        """JSON-serializable policy state for ``/inspect/tcache``."""
        return {"name": self.name}

    def audit(self, resident) -> list[str]:
        """Consistency check: return problems (stale metadata that
        references blocks not in *resident*), empty when clean."""
        return []


class FifoPolicy(ReplacementPolicy):
    """The seed path as an object: evict the head, admit everything."""

    name = "fifo"


class FlushPolicy(ReplacementPolicy):
    """The seed drop-everything policy: never evict piecemeal."""

    name = "flush"

    def on_evict_candidate(self, block: TBlock) -> str:
        return FLUSH


class TrripPolicy(ReplacementPolicy):
    """Temperature-seeded re-reference interval prediction.

    *temperature* is a :class:`repro.profiling.TemperatureMap` (or
    None: every address classifies warm, admission filtering is off
    and the policy degrades to fifo plus metadata).  RRPV seeds:
    hot→1, warm→2, cold→``max_rrpv``; a prefetched install seeds one
    step colder than a demand install; a hit promotes to 0
    (protected).  Cold-temperature prefetch candidates are rejected.

    *preemptive_flush* arms the Dynamo-style decision: when the
    forced FIFO victim is protected and so is every other resident
    block, the working set does not fit and the policy answers
    "flush" instead of grinding through protected code one block at
    a time.
    """

    name = "trrip"

    def __init__(self, temperature=None, *, max_rrpv: int = 3,
                 preemptive_flush: bool = False):
        super().__init__()
        if max_rrpv < 1:
            raise ValueError("max_rrpv must be >= 1")
        self.temperature = temperature
        self.max_rrpv = max_rrpv
        self.preemptive_flush = preemptive_flush
        self.filters_prefetch = temperature is not None
        self._rrpv: dict[TBlock, int] = {}

    def _seed(self, orig: int) -> int:
        if self.temperature is None:
            return 2 if self.max_rrpv >= 2 else self.max_rrpv
        temp = self.temperature.classify(orig)
        if temp == "hot":
            return 1
        if temp == "warm":
            return min(2, self.max_rrpv)
        return self.max_rrpv

    def on_install(self, block: TBlock, *, prefetched: bool) -> None:
        rrpv = self._seed(block.orig)
        if prefetched:
            rrpv = min(self.max_rrpv, rrpv + 1)
        self._rrpv[block] = rrpv

    def on_hit(self, block: TBlock) -> None:
        self._rrpv[block] = 0

    def on_evict_candidate(self, block: TBlock) -> str:
        if not self.preemptive_flush:
            return EVICT
        rrpv = self._rrpv
        max_rrpv = self.max_rrpv
        if rrpv.get(block, max_rrpv) != 0:
            return EVICT
        order = self.cc.tcache.order
        protected = sum(1 for b in order if rrpv.get(b, max_rrpv) == 0)
        if protected < len(order):
            return EVICT
        cc = self.cc
        cc.stats.policy_preemptive_flushes += 1
        if cc.tracer is not None:
            cc.tracer.emit("cc.policy_flush", "cc",
                           resident=len(order), protected=protected)
        return FLUSH

    def on_evict(self, block: TBlock) -> None:
        self._rrpv.pop(block, None)

    def on_flush(self) -> None:
        self._rrpv.clear()

    def admit_prefetch(self, orig: int) -> bool:
        return self.temperature.classify(orig) != "cold"

    def snapshot(self) -> dict:
        histogram: dict[int, int] = {}
        for value in self._rrpv.values():
            histogram[value] = histogram.get(value, 0) + 1
        snap = {
            "name": self.name,
            "max_rrpv": self.max_rrpv,
            "preemptive_flush": self.preemptive_flush,
            "tracked_blocks": len(self._rrpv),
            "protected_blocks": histogram.get(0, 0),
            "rrpv_histogram": {str(k): v
                               for k, v in sorted(histogram.items())},
        }
        if self.temperature is not None:
            snap["temperature_procs"] = dict(self.temperature.counts)
        return snap

    def audit(self, resident) -> list[str]:
        live = set(map(id, resident))
        return [f"trrip rrpv entry for non-resident block "
                f"{block.orig:#x}"
                for block in self._rrpv if id(block) not in live]


class NhitPolicy(ReplacementPolicy):
    """Admit prefetch only after *n* demonstrated touches.

    Touch counts are keyed by original address and persist across
    evictions and flushes **by design** (an address that keeps coming
    back is exactly the one worth speculating on); only
    :meth:`reset` — the admin-resize boundary — clears them.
    """

    name = "nhit"

    def __init__(self, n: int = 2):
        super().__init__()
        if n < 1:
            raise ValueError("nhit threshold must be >= 1")
        self.n = n
        self.filters_prefetch = True
        self.touches: dict[int, int] = {}

    def _touch(self, orig: int) -> None:
        count = self.touches.get(orig, 0) + 1
        self.touches[orig] = count
        if count == self.n:
            cc = self.cc
            cc.stats.policy_promotions += 1
            if cc.tracer is not None:
                cc.tracer.emit("cc.policy_promote", "cc", orig=orig,
                               touches=count)

    def on_install(self, block: TBlock, *, prefetched: bool) -> None:
        if not prefetched:       # a demand install is a real touch
            self._touch(block.orig)

    def on_hit(self, block: TBlock) -> None:
        self._touch(block.orig)

    def admit_prefetch(self, orig: int) -> bool:
        return self.touches.get(orig, 0) >= self.n

    def reset(self) -> None:
        self.touches.clear()

    def snapshot(self) -> dict:
        promoted = sum(1 for c in self.touches.values() if c >= self.n)
        return {"name": self.name, "n": self.n,
                "tracked_origs": len(self.touches),
                "promoted_origs": promoted}


class SeqCutoffPolicy(ReplacementPolicy):
    """Reject prefetch that extends long sequential install runs.

    Tracks the install stream: a chunk whose original address starts
    exactly where the previous install ended extends the current
    sequential run.  Once the run reaches *cutoff* chunks, prefetch
    candidates that would extend it further are rejected — streaming
    code marches through the cache once and is evicted before any
    re-entry, so speculating ahead of it only pollutes the tcache.
    """

    name = "seqcutoff"

    def __init__(self, cutoff: int = 4):
        super().__init__()
        if cutoff < 1:
            raise ValueError("seqcutoff cutoff must be >= 1")
        self.cutoff = cutoff
        self.filters_prefetch = True
        self._run = 0
        self._next_seq: int | None = None

    def on_install(self, block: TBlock, *, prefetched: bool) -> None:
        if block.orig == self._next_seq:
            self._run += 1
        else:
            self._run = 1
        self._next_seq = block.orig + block.orig_size

    def admit_prefetch(self, orig: int) -> bool:
        return not (self._run >= self.cutoff and orig == self._next_seq)

    def on_flush(self) -> None:
        self._run = 0
        self._next_seq = None

    def snapshot(self) -> dict:
        return {"name": self.name, "cutoff": self.cutoff,
                "run_length": self._run, "next_seq": self._next_seq}


#: The one registry every entry point validates against: CLI choices,
#: admin ``set``, :class:`~repro.softcache.system.SoftCacheConfig` and
#: the controller constructor all resolve names here.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    FlushPolicy.name: FlushPolicy,
    TrripPolicy.name: TrripPolicy,
    NhitPolicy.name: NhitPolicy,
    SeqCutoffPolicy.name: SeqCutoffPolicy,
}


def policy_names() -> tuple[str, ...]:
    """Valid policy names, sorted (CLI choices, error messages)."""
    return tuple(sorted(POLICIES))


def validate_policy_name(name) -> str:
    """Return *name* if registered, else raise with the valid set."""
    if name not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; valid policies: "
            f"{', '.join(policy_names())}")
    return name


def make_policy(policy, **params) -> ReplacementPolicy:
    """Resolve a name (plus constructor *params*) or pass through an
    already-built :class:`ReplacementPolicy` instance."""
    if isinstance(policy, ReplacementPolicy):
        return policy
    validate_policy_name(policy)
    return POLICIES[policy](**params)
