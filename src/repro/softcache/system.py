"""Top-level SoftCache system: machine + MC + CC + link, wired up.

:class:`SoftCacheSystem` is the public entry point of the library: give
it a linked :class:`~repro.asm.image.Image` and a
:class:`SoftCacheConfig` and call :meth:`run`.  The embedded client's
remote text is mapped non-executable, so the *only* way the program can
run is through the translation cache — any rewriter bug faults loudly
instead of silently executing untranslated code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.image import Image
from ..isa import Op, decode
from ..layout import LOCAL_BASE, align
from ..net import Channel, LinkModel
from ..sim.costs import DEFAULT_COSTS, CostModel
from ..sim.machine import Machine, MachineConfig
from .cc import BlockCacheController, ProcCacheController
from .mc import MemoryController
from .tcache import TCacheGeometry


@dataclass
class SoftCacheConfig:
    """All knobs of a SoftCache instance."""

    #: Translation cache capacity in bytes (the x-axis of Figure 7).
    tcache_size: int = 24 * 1024
    #: Chunking granularity: ``block`` (SPARC prototype), ``ebb``
    #: (optimized trace chunks) or ``proc`` (ARM prototype).
    granularity: str = "block"
    #: Max basic blocks glued into one EBB chunk.
    ebb_limit: int = 8
    #: Replacement policy: a registered name (``fifo``, ``flush``,
    #: ``trrip``, ``nhit``, ``seqcutoff`` — see
    #: :mod:`repro.softcache.policy`) or a pre-built
    #: :class:`~repro.softcache.policy.ReplacementPolicy` instance.
    policy: object = "fifo"
    #: Constructor kwargs for a named policy (e.g. ``{"temperature":
    #: TemperatureMap(...)}`` for trrip, ``{"n": 3}`` for nhit).
    #: Ignored when ``policy`` is already an instance.
    policy_params: dict | None = None
    #: Successor-prefetch depth: a miss reply carries up to this many
    #: extra non-resident successor chunks in one batched exchange.
    #: 0 (the default) reproduces the paper's one-chunk-per-miss
    #: protocol exactly.
    prefetch_depth: int = 0
    #: Stub area size in bytes; default = max(256, tcache_size // 4).
    stub_capacity: int | None = None
    #: Redirector area bytes (proc mode); default sized from the image.
    redirector_capacity: int | None = None
    #: Permanent area for pinned chunks (§4 novel capability).
    pinned_capacity: int = 0
    link: LinkModel = field(default_factory=LinkModel)
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    #: Record per-event cycle timestamps (Figure 8 time series).
    record_timeline: bool = True
    #: Overwrite evicted blocks with BREAK words (loud failure on any
    #: dangling pointer; used heavily by the test suite).
    debug_poison: bool = False
    heap_size: int = 256 * 1024
    #: Enable the Section-3 software data cache (full-system mode).
    #: A :class:`repro.dcache.DataCacheConfig` or None.
    data_cache: object | None = None
    #: Superblock (threaded-code) execution in the interpreter.  Host
    #: speed only; never changes simulated counts.
    superblocks: bool = True
    #: Template-JIT tier policy ("off" | "hot" | "all") and the hotness
    #: threshold for "hot".  Host speed only; cycle-identical.
    jit: str = "hot"
    jit_threshold: int = 16
    #: Flight recorder (:class:`repro.obs.FlightRecorder`) to thread
    #: through every layer, or None (the default: hot paths stay
    #: tracer-free).  Tracing never charges simulated cycles, so an
    #: enabled run is cycle-identical to a disabled one.
    recorder: object | None = None
    #: Link fault plan (:class:`repro.net.FaultPlan`) or None.  None or
    #: ``FaultPlan.none()`` installs nothing: the channel is the plain
    #: seed :class:`Channel` and every code path is bit-identical to a
    #: fault-free build.
    fault_plan: object | None = None
    #: Retry behaviour under faults (:class:`repro.net.RetryPolicy`);
    #: None means the default policy.  Ignored without a fault plan.
    retry_policy: object | None = None
    #: Live code update schedule: ``CYCLES:IMAGE`` spec strings (see
    #: :func:`repro.softcache.update.parse_update_spec`).  Each system
    #: builds its own :class:`~repro.softcache.update.UpdateSchedule`
    #: from these, so one shared config drives a whole fleet (publishes
    #: are idempotent by content digest on a shared MC).  Empty (the
    #: default) adds nothing to any path.
    update_at: tuple = ()

    def __post_init__(self):
        from .policy import ReplacementPolicy, validate_policy_name
        if not isinstance(self.policy, ReplacementPolicy):
            # fail at config time, not at first miss
            validate_policy_name(self.policy)


@dataclass
class RunReport:
    """Everything a SoftCache run produced."""

    exit_code: int
    instructions: int
    cycles: int
    seconds: float
    output: str


class SoftCacheSystem:
    """One embedded client running *image* under a SoftCache."""

    def __init__(self, image: Image, config: SoftCacheConfig | None = None,
                 *, shared_mc: MemoryController | None = None,
                 recorder: object | None = None):
        """*shared_mc* lets several client systems share one server-side
        memory controller (and its chunk cache) — the deployment shape
        of Figure 1, where one server feeds a fleet of devices.
        *recorder* overrides ``config.recorder`` (the fleet passes a
        per-client recorder over one shared config)."""
        self.image = image
        self.config = config = config or SoftCacheConfig()
        geometry = self._geometry(image, config)
        self.geometry = geometry
        pinned_reserve = 0
        if config.data_cache is not None:
            pinned_reserve = config.data_cache.max_pinned_bytes + 64
        local_size = align(geometry.total + pinned_reserve, 4096)
        self.machine = Machine(image, MachineConfig(
            local_ram_size=local_size,
            text_executable=False,   # all fetches go through the tcache
            heap_size=config.heap_size,
            costs=config.costs,
            superblocks=config.superblocks,
            jit=config.jit,
            jit_threshold=config.jit_threshold,
        ))
        if shared_mc is not None:
            knows = getattr(shared_mc, "knows_image", None)
            if not (knows(image) if knows is not None
                    else shared_mc.image is image):
                raise ValueError("shared MC serves a different image")
            if shared_mc.granularity != config.granularity:
                raise ValueError("shared MC granularity mismatch")
            self.mc = shared_mc
        else:
            self.mc = MemoryController(image,
                                       granularity=config.granularity,
                                       ebb_limit=config.ebb_limit)
        self.channel = Channel(config.link)
        rec = recorder if recorder is not None else config.recorder
        self.recorder = rec if (rec is not None and rec.enabled) else None
        if self.recorder is not None:
            cpu = self.machine.cpu
            self.recorder.bind_clock(lambda: cpu.cycles,
                                     config.costs.cpu_hz)
            self.mc.tracer = self.recorder
            self.channel.tracer = self.recorder
            trc = self.recorder

            def _interp_hook(kind: str, pc: int, n: int) -> None:
                if kind == "fuse":
                    trc.emit("interp.fuse", "interp", pc=pc, fused=n)
                elif kind == "sb_invalidate":
                    trc.emit("interp.sb_invalidate", "interp", pc=pc)
                elif kind == "jit_compile":
                    trc.emit("cpu.jit_compile", "cpu", pc=pc, fused=n)
                elif kind == "jit_load":
                    trc.emit("cpu.jit_load", "cpu", pc=pc, fused=n)
                elif kind == "jit_promote":
                    trc.emit("cpu.jit_promote", "cpu", pc=pc, count=n)
                else:
                    trc.emit("interp.flush", "interp")

            cpu.trace_hook = _interp_hook
        controller_cls = (ProcCacheController
                          if config.granularity == "proc"
                          else BlockCacheController)
        self.cc = controller_cls(
            self.machine, self.mc, self.channel, geometry,
            policy=config.policy,
            policy_params=config.policy_params,
            record_timeline=config.record_timeline,
            debug_poison=config.debug_poison,
            prefetch_depth=config.prefetch_depth,
            recorder=self.recorder)
        self.dcache = None
        if config.data_cache is not None:
            from ..dcache import DataRewriter, SoftDataCache
            from ..isa import Trap
            rewriter = DataRewriter(image)
            dcache = SoftDataCache(
                self.machine, self.channel, config.costs,
                config.data_cache, rewriter,
                local_base=LOCAL_BASE + align(geometry.total, 16))
            self.mc.data_rewriter = rewriter
            self.cc.extra_trap_handlers[Trap.DC_LOAD] = dcache.handle_dc
            self.cc.extra_trap_handlers[Trap.DC_STORE] = dcache.handle_dc
            self.cc.extra_trap_handlers[Trap.SC_ENTER] = dcache.handle_sc
            self.cc.extra_trap_handlers[Trap.SC_EXIT] = dcache.handle_sc
            self.dcache = dcache
        #: The installed FaultyChannel, or None on a reliable link.
        self.faults = None
        if config.fault_plan is not None:
            from ..net.faults import install_faults
            self.faults = install_faults(self, config.fault_plan,
                                         config.retry_policy)
        #: Live code update schedule driving mid-run publishes, or None.
        self.update_schedule = None
        if config.update_at:
            from .update import UpdateSchedule
            self.update_schedule = UpdateSchedule.from_specs(
                config.update_at, image)
            self.cc.set_update_schedule(self.update_schedule)
        # softcache-mode tcache words are content enough for JIT
        # artifact identity, but the *image* digest namespaces the
        # persistent store so a republished image can never resurrect
        # a pre-update artifact
        if hasattr(self.machine.cpu, "image_tag"):
            from .update import image_digest
            self.machine.cpu.image_tag = image_digest(image)[:8]

    @staticmethod
    def _geometry(image: Image, config: SoftCacheConfig) -> TCacheGeometry:
        if config.granularity == "proc":
            stub = 0
            redirector = config.redirector_capacity
            if redirector is None:
                call_sites = sum(
                    1 for off in range(0, len(image.text), 4)
                    if decode(int.from_bytes(image.text[off:off + 4],
                                             "little")).op is Op.JAL)
                redirector = 8 * call_sites + 64
        else:
            stub = config.stub_capacity
            if stub is None:
                stub = max(256, config.tcache_size // 4)
            redirector = 0
        return TCacheGeometry(base=LOCAL_BASE, size=config.tcache_size,
                              stub_capacity=stub,
                              redirector_capacity=redirector,
                              pinned_capacity=config.pinned_capacity)

    # -- pinning (§4 novel capability) -------------------------------------

    def pin(self, *targets: int | str) -> None:
        """Pin chunks permanently in local memory before running.

        Each target is an original text address or a symbol name (an
        interrupt handler, a latency-critical routine).  Pinned chunks
        are never evicted and survive flushes, so their code has
        hardware-like timing predictability.  Requires
        ``pinned_capacity`` in the config.
        """
        for target in targets:
            addr = (self.image.symbols[target]
                    if isinstance(target, str) else target)
            self.cc.pin_original(addr)

    # -- execution ------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000_000) -> RunReport:
        """Run the program to completion under the SoftCache."""
        self.cc.start()
        try:
            exit_code = self.machine.cpu.run(max_instructions)
        finally:
            if self.dcache is not None:
                self.dcache.finalize()
        if self.update_schedule is not None:
            # quiescent sync: a device drains its update queue when
            # the program exits, so end-of-run state reflects every
            # publish that was due — the convergence differential must
            # not depend on whether a miss happened to occur after the
            # last publish point
            self.cc._sync_epoch()
        cpu = self.machine.cpu
        if self.recorder is not None:
            self.publish_metrics()
        return RunReport(
            exit_code=exit_code,
            instructions=cpu.icount,
            cycles=cpu.cycles,
            seconds=self.config.costs.cycles_to_seconds(cpu.cycles),
            output=self.machine.output_text,
        )

    def inspect(self) -> dict:
        """Read-only snapshot of the live cache state (the ops plane).

        Serves ``/inspect/tcache`` and ``/inspect/superblocks``:
        tcache residency (per-block origin, placement, size, link
        occupancy from the LinkIndex), stub/redirector/pinned area
        occupancy, per-chunk heat (demand misses seen by the flight
        recorder, when one is attached), and the interpreter's
        superblock tier census.  Touches nothing: no simulated cycles
        are charged, no state mutated, so snapshots are invisible to
        the architectural digest.
        """
        cc = self.cc
        tc = cc.tcache
        blocks = []
        for b in list(tc.order):
            blocks.append({
                "orig": b.orig, "addr": b.addr, "size": b.size,
                "orig_size": b.orig_size, "name": b.name,
                "prefetched": b.prefetched,
                "incoming_links": len(b.incoming),
                "outgoing_links": len(b.outgoing),
                "stubs": len(b.stubs),
            })
        pinned = [{"orig": b.orig, "addr": b.addr, "size": b.size,
                   "name": b.name} for b in list(tc.pinned_blocks)]
        heat: list[dict] = []
        if self.recorder is not None:
            from ..obs.export import top_hot_chunks
            heat = top_hot_chunks(list(self.recorder.events))
        stats = cc.stats
        return {
            "tcache": {
                "capacity": tc.size,
                "boot_capacity": tc.geom.size,
                "used": tc.used_bytes,
                "resident_blocks": len(blocks),
                "map_entries": len(tc.map),
                "stub_bytes": tc.stub_bytes_in_use,
                "stub_capacity": tc.geom.stub_capacity,
                "redirector_bytes": tc.redirector_bytes_in_use,
                "redirector_capacity": tc.geom.redirector_capacity,
                "pinned_bytes": tc.pinned_bytes_in_use,
                "policy": cc.policy,
                "policy_state": cc._policy.snapshot(),
                "prefetch_depth": cc.prefetch_depth,
                "blocks": blocks,
                "pinned": pinned,
                "heat": heat,
            },
            "superblocks": self.machine.cpu.superblock_census(),
            "images": self._inspect_images(),
            "stats": {
                "translations": stats.translations,
                "evictions": stats.evictions,
                "flushes": stats.flushes,
                "miss_traps": stats.miss_traps,
                "admin_commands": stats.admin_commands,
                "instructions": self.machine.cpu.icount,
                "cycles": self.machine.cpu.cycles,
            },
        }

    def _inspect_images(self) -> dict:
        """``/inspect/images``: the MC's version store plus this
        client's update progress (epoch observed, barriers crossed)."""
        info = getattr(self.mc, "version_info", lambda: {})()
        stats = self.cc.stats
        info["client_epoch"] = self.cc._epoch
        info["converged"] = self.cc._epoch == getattr(self.mc,
                                                      "epoch", 0)
        info["update_barriers"] = stats.update_barriers
        info["invalidated_blocks"] = stats.update_invalidated_blocks
        info["restamped_blocks"] = stats.update_restamped_blocks
        return info

    def publish_metrics(self, registry=None) -> None:
        """Mirror every layer's stats dataclass into a metrics
        registry (counters for ints, gauges for the rest) — the
        recorder's by default, or an explicit *registry* (e.g. for
        ``repro run --prom-out`` without tracing)."""
        if registry is None:
            if self.recorder is None:
                return
            registry = self.recorder.metrics
        from ..obs.metrics import publish_dataclass
        self.cc.stats.publish(registry, prefix="cc")
        publish_dataclass(registry, "mc", self.mc.stats)
        publish_dataclass(registry, "link", self.channel.stats)
        publish_dataclass(registry, "interp", self.machine.cpu.sb_stats)
        publish_dataclass(registry, "cpu", self.machine.cpu.jit_stats)
        if self.faults is not None:
            publish_dataclass(registry, "fault", self.faults.fault_stats)
        cpu = self.machine.cpu
        registry.gauge("sim.instructions").set(cpu.icount)
        registry.gauge("sim.cycles").set(cpu.cycles)
        st = self.cc.stats
        for name, value in (
                ("update.barriers", st.update_barriers),
                ("update.invalidated_blocks",
                 st.update_invalidated_blocks),
                ("update.restamped_blocks", st.update_restamped_blocks),
                ("update.prefetch_dropped", st.update_prefetch_dropped),
                ("update.text_patched_words",
                 st.update_text_patched_words),
                ("update.publishes", self.mc.stats.publishes),
                ("update.stale_serves", self.mc.stats.stale_serves)):
            counter = registry.counter(name)
            counter.inc(value - counter.value)
        registry.gauge("update.epoch").set(self.cc._epoch)
        registry.gauge("update.mc_epoch").set(
            getattr(self.mc, "epoch", 0))

    # -- reporting --------------------------------------------------------

    @property
    def stats(self):
        """The cache controller's counters."""
        return self.cc.stats

    @property
    def link_stats(self):
        return self.channel.stats

    @property
    def mc_stats(self):
        return self.mc.stats

    @property
    def local_memory_in_use(self) -> dict[str, int]:
        return self.cc.local_memory_in_use


def run_softcache(image: Image, config: SoftCacheConfig | None = None,
                  max_instructions: int = 2_000_000_000
                  ) -> tuple[RunReport, SoftCacheSystem]:
    """Convenience: build a system, run it, return (report, system)."""
    system = SoftCacheSystem(image, config)
    report = system.run(max_instructions)
    return report, system
