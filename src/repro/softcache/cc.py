"""The cache controller (CC): the client half of the SoftCache.

The CC owns the translation cache in the embedded client's local RAM.
It fields the miss traps that rewritten code executes, requests chunks
from the memory controller over the network link, installs them,
backpatches the branch words that pointed at miss stubs ("eventually,
if used, again rewritten to point to other blocks in the tcache",
Fig 3), and maintains the invalidation bookkeeping: incoming-pointer
links for every patched word plus the stack walk that fixes return
addresses when a block with live continuations is evicted.

Two controllers mirror the two prototypes:

* :class:`BlockCacheController` — SPARC style (§2.1): basic-block or
  extended-basic-block chunks, branch stubs, return-continuation
  slots, hash-table fallback for computed jumps, stack walking at
  invalidation time.
* :class:`ProcCacheController` — ARM style (§2.3): whole-procedure
  chunks, permanent per-call-site *redirectors* so that no return
  address ever points into evictable memory, no indirect jumps.

All CC work is charged to the simulated CPU through the cost model, and
link transfer time is converted to client cycles, so the paper's
time-shaped results (Figures 5 and 8) fall out of `cpu.cycles`.
"""

from __future__ import annotations

import sys
from time import perf_counter

from ..isa import Insn, Op, Trap, encode, patch_branch_disp, patch_jump_target
from ..isa.registers import FP, RA
from ..layout import FP_SENTINEL
from ..net import Channel
from ..net.faults import LinkDown
from ..sim.machine import Machine
from .mc import MemoryController
from .chunks import Chunk, ExitKind
from .policy import FLUSH, make_policy
from .records import ContSlot, JRSite, Link, Redirector, SiteKind, Stub, TBlock
from .stats import SoftCacheStats
from .tcache import TCache, TCacheFull, TCacheGeometry


class SoftCacheError(Exception):
    """Internal invariant violation or unrecoverable configuration."""


class _StubExhausted(Exception):
    """Stub area full; caller flushes and retries."""


_BREAK_WORD = encode(Insn(Op.BREAK, imm=0xDEAD))

#: (trap code, operand) -> encoded TRAP word, and (op, imm) -> encoded
#: J/JAL word.  Stub/slot ids recycle and tcache targets repeat under
#: eviction churn, so the same words are re-encoded constantly on the
#: miss path; both operand spaces are 20-bit, keeping the memos small.
_TRAP_WORD_MEMO: dict[tuple[int, int], int] = {}
_JUMP_WORD_MEMO: dict[tuple[Op, int], int] = {}


def _trap_word(code, imm: int) -> int:
    word = _TRAP_WORD_MEMO.get((code, imm))
    if word is None:
        word = encode(Insn(Op.TRAP, rd=code, imm=imm))
        _TRAP_WORD_MEMO[(code, imm)] = word
    return word


def _jump_word(op: Op, imm: int) -> int:
    word = _JUMP_WORD_MEMO.get((op, imm))
    if word is None:
        word = encode(Insn(op, imm=imm))
        _JUMP_WORD_MEMO[(op, imm)] = word
    return word

_LITTLE_ENDIAN_HOST = sys.byteorder == "little"


class _BEWords:
    """Word view over a bytearray for big-endian hosts (fallback for
    the ``memoryview.cast("I")`` bulk-install fast path)."""

    __slots__ = ("_buf",)

    def __init__(self, buf: bytearray):
        self._buf = buf

    def __getitem__(self, i: int) -> int:
        return int.from_bytes(self._buf[4 * i:4 * i + 4], "little")

    def __setitem__(self, i: int, word: int) -> None:
        self._buf[4 * i:4 * i + 4] = word.to_bytes(4, "little")


def _word_view(buf: bytearray):
    if _LITTLE_ENDIAN_HOST:
        return memoryview(buf).cast("I")
    return _BEWords(buf)


class _IdAlloc:
    """20-bit id allocator with reuse (TRAP operand space)."""

    def __init__(self, limit: int = 1 << 20):
        self._next = 0
        self._free: list[int] = []
        self._limit = limit

    def alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next >= self._limit:
            raise SoftCacheError("trap id space exhausted")
        value = self._next
        self._next += 1
        return value

    def free(self, value: int) -> None:
        self._free.append(value)

    def reset(self) -> None:
        self._next = 0
        self._free.clear()


class BaseCacheController:
    """Machinery shared by both prototype styles."""

    def __init__(self, machine: Machine, mc: MemoryController,
                 channel: Channel, geometry: TCacheGeometry, *,
                 policy="fifo", policy_params: dict | None = None,
                 record_timeline: bool = True,
                 debug_poison: bool = False, prefetch_depth: int = 0,
                 recorder=None):
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.machine = machine
        self.cpu = machine.cpu
        self.mem = machine.mem
        self.costs = machine.config.costs
        self.mc = mc
        self.channel = channel
        self.tcache = TCache(geometry)
        self._set_policy(policy, policy_params)
        self.prefetch_depth = prefetch_depth
        self.record_timeline = record_timeline
        self.debug_poison = debug_poison
        self.stats = SoftCacheStats()
        #: Flight recorder (repro.obs), or None; every emission site is
        #: behind one ``is not None`` check so disabled tracing costs
        #: nothing on the miss path.
        self.tracer = (recorder if recorder is not None
                       and recorder.enabled else None)
        if self.tracer is not None:
            metrics = self.tracer.metrics
            self._miss_latency = metrics.histogram(
                "cc.miss_latency_cycles")
            self._patch_distance = metrics.histogram(
                "cc.patch_distance_bytes")
        else:
            self._miss_latency = None
            self._patch_distance = None
        self.cpu.trap_hook = self._on_trap
        machine.invalidate_hook = self.invalidate_original_range
        #: extra trap dispatchers (the D-cache plugs in here).
        self.extra_trap_handlers: dict[int, object] = {}
        #: Misses stranded by a LinkDown trap, replayed at reconnect.
        #: Blocking RPC semantics mean at most one is outstanding, but
        #: the list form is what check_consistency audits.
        self.pending_misses: list[int] = []
        #: Fault layer's payload-staging hook (install_faults rebinds
        #: this); None on a fault-free channel, keeping the miss path
        #: free of checksum work.
        self._stager = getattr(channel, "stage_payloads", None)
        #: Ops-plane control queue (:class:`repro.obs.server.
        #: ControlPlane`), or None.  Admin commands posted over HTTP
        #: are applied at the next miss boundary — the only safe
        #: point: no placed-but-uncommitted block, no mid-install
        #: pointer state.  Unattached (the default) the miss path
        #: pays one ``is not None`` comparison, nothing else.
        self._control = None
        #: Live code update (:mod:`repro.softcache.update`): the image
        #: epoch this client's resident code belongs to, the optional
        #: per-client publish schedule, and the epoch each parked miss
        #: was pending under (audited by ``check_consistency``).
        self._epoch = getattr(mc, "epoch", 0)
        self._update_schedule = None
        self.pending_miss_epochs: dict[int, int] = {}
        #: (cycles, epoch) per crossed update barrier — the client's
        #: leg of the fleet rollout wavefront.
        self.epoch_transitions: list[tuple[int, int]] = []

    # -- replacement policy -------------------------------------------------

    def _set_policy(self, policy, params: dict | None = None) -> None:
        """Build/bind the replacement policy (constructor + admin set).

        ``self.policy`` stays the plain name string the rest of the
        system (inspect snapshots, fleet metadata, tests) reads.
        """
        obj = make_policy(policy, **(params or {}))
        obj.bind(self)
        self._policy = obj
        self.policy = obj.name
        self._rebuild_batch_filter()

    def _rebuild_batch_filter(self) -> None:
        """Choose the predicate handed to ``mc.serve_batch``.

        A policy that never rejects admission gets the raw residency
        bound method — the exact seed fast path, zero indirection.  A
        filtering policy gets a wrapper that reports non-resident,
        policy-rejected candidates as "resident" so the MC skips
        shipping them (the link bytes are the savings), counting and
        tracing each rejection.
        """
        policy = self._policy
        if not policy.filters_prefetch:
            self._batch_filter = self._is_resident
            return

        def batch_filter(orig: int) -> bool:
            if self._is_resident(orig):
                return True
            if policy.admit_prefetch(orig):
                return False
            self.stats.policy_prefetch_rejects += 1
            if self.tracer is not None:
                self.tracer.emit("cc.policy_reject", "cc", orig=orig,
                                 policy=policy.name)
            return True

        self._batch_filter = batch_filter

    # -- live code update ---------------------------------------------------

    def set_update_schedule(self, schedule) -> None:
        """Attach a per-client :class:`~repro.softcache.update.
        UpdateSchedule`.  The schedule gates the observed epoch
        (``min(mc.epoch, cap)``), so a client attached to a shared MC
        that other clients already updated starts from the oldest
        version its own clock allows — the rollout wavefront."""
        self._update_schedule = schedule
        self._epoch = min(self._epoch,
                          schedule.poll(self.cpu.cycles, self.mc))

    def _sync_epoch(self) -> None:
        """Observe the MC's epoch at a miss boundary, crossing the
        update barrier if it moved, and route the serves that follow:
        ``mc.client_epoch`` makes the MC resolve them at the epoch
        this client observed, not at the MC's own head."""
        mc = self.mc
        sched = self._update_schedule
        if sched is not None:
            observed = min(getattr(mc, "epoch", 0),
                           sched.poll(self.cpu.cycles, mc))
        else:
            observed = getattr(mc, "epoch", 0)
        if observed != self._epoch:
            self._update_barrier(observed)
        mc.client_epoch = observed

    def _update_barrier(self, new_epoch: int) -> None:
        """Cross to image epoch *new_epoch* at a miss boundary — the
        only safe point (no placed-but-uncommitted block, no
        mid-install pointer state).

        Exactly the resident blocks whose original span intersects
        text the publish changed are invalidated through the normal
        unlink machinery (prefetched-but-unexecuted ones are dropped
        and counted); every surviving block, stub and parked miss is
        re-stamped to the new epoch; the client's text mirror is
        rewritten with the new bytes (the flash write a real update
        agent performs — it also kills any decoded closure over those
        words through the memory code-write hooks); and the JIT
        artifact namespace rolls to the new image's content digest so
        a persistent ``.sbc`` artifact can never resurrect old code.
        Refetching is lazy: untouched hot code keeps running and dirty
        chunks fault back in on their next use.  Runs symmetrically
        for a *downgrade* (an MC crash-restart rolled back a
        non-durable publish).
        """
        stats = self.stats
        prev = self._epoch
        mc = self.mc
        spans = mc.dirty_spans_between(prev, new_epoch)

        def dirty(orig: int, size: int) -> bool:
            for start, end in spans:
                if orig < end and start < orig + size:
                    return True
            return False

        for block in self.tcache.pinned_blocks:
            if dirty(block.orig, block.orig_size):
                raise SoftCacheError(
                    f"publish (epoch {new_epoch}) rewrites pinned "
                    f"chunk {block.orig:#x}; pinned code cannot be "
                    f"hot-patched")
        victims = [b for b in self.tcache.order
                   if dirty(b.orig, b.orig_size)]
        invalidated = 0
        dropped_prefetch = 0
        try:
            for block in victims:
                if block.prefetched:
                    dropped_prefetch += 1
                self.tcache.retire(block)
                self._policy.on_evict(block)
                self._unlink_block(block)
                if self.debug_poison:
                    self.mem.write_bytes(
                        block.addr, _BREAK_WORD.to_bytes(4, "little")
                        * (block.size // 4))
                invalidated += 1
        except _StubExhausted:
            raise SoftCacheError(
                "stub area exhausted while repairing pointers during "
                "an update barrier; increase stub_capacity") from None
        self._charge(self.costs.evict_per_block_cycles * invalidated)
        # untouched old-epoch code stays resident: re-stamp it (and
        # the stubs/parked misses, which hold original addresses and
        # so stay valid across a layout-preserving publish)
        restamped = 0
        for block in self.tcache.order:
            if block.epoch != new_epoch:
                block.epoch = new_epoch
                restamped += 1
        for block in self.tcache.pinned_blocks:
            block.epoch = new_epoch
        stubs = getattr(self, "stubs", None)
        if stubs:
            for stub in stubs.values():
                stub.epoch = new_epoch
        for orig in self.pending_misses:
            self.pending_miss_epochs[orig] = new_epoch
        # the program can read its own text as data, and the update
        # convergence proof hashes the text mirror
        patched_words = 0
        new_image = mc.image_at(new_epoch)
        mem = self.mem
        base = new_image.text_base
        for start, end in spans:
            mem.write_bytes(start,
                            new_image.text[start - base:end - base])
            patched_words += (end - start) // 4
        if hasattr(self.cpu, "image_tag"):
            from .update import image_digest
            self.cpu.image_tag = image_digest(new_image)[:8]
        self._epoch = new_epoch
        self.epoch_transitions.append((self.cpu.cycles, new_epoch))
        stats.update_barriers += 1
        stats.update_invalidated_blocks += invalidated
        stats.update_restamped_blocks += restamped
        stats.update_prefetch_dropped += dropped_prefetch
        stats.update_text_patched_words += patched_words
        trc = self.tracer
        if trc is not None:
            trc.emit("cc.epoch_observed", "cc", epoch=new_epoch,
                     prev=prev)
            trc.emit("cc.update_barrier", "cc", epoch=new_epoch,
                     prev=prev, invalidated=invalidated,
                     restamped=restamped,
                     dropped_prefetch=dropped_prefetch)

    # -- cost charging -----------------------------------------------------

    def _charge(self, cycles: int) -> None:
        self.cpu.add_cycles(cycles)

    def _charge_link(self, seconds: float) -> int:
        cycles = int(seconds * self.costs.cpu_hz)
        self.cpu.add_cycles(cycles)
        return cycles

    # -- trap dispatch ------------------------------------------------------

    def _on_trap(self, cpu, code: int, operand: int, pc: int) -> int:
        if code == Trap.MISS_BRANCH:
            return self._miss_branch(operand)
        if code == Trap.MISS_RET:
            return self._miss_ret(operand)
        if code == Trap.MISS_JR:
            return self._miss_jr(operand)
        if code == Trap.MISS_CALL:
            return self._miss_call(operand)
        if code == Trap.RET_LAND:
            return self._ret_land(operand)
        handler = self.extra_trap_handlers.get(code)
        if handler is not None:
            return handler(cpu, code, operand, pc)
        raise SoftCacheError(f"unhandled trap code {code} at {pc:#x}")

    def _miss_branch(self, operand: int) -> int:
        raise SoftCacheError("MISS_BRANCH trap in this controller mode")

    def _miss_ret(self, operand: int) -> int:
        raise SoftCacheError("MISS_RET trap in this controller mode")

    def _miss_jr(self, operand: int) -> int:
        raise SoftCacheError("MISS_JR trap in this controller mode")

    def _miss_call(self, operand: int) -> int:
        raise SoftCacheError("MISS_CALL trap in this controller mode")

    def _ret_land(self, operand: int) -> int:
        raise SoftCacheError("RET_LAND trap in this controller mode")

    # -- translation ----------------------------------------------------------

    def start(self) -> None:
        """Translate the entry chunk and point the CPU at it."""
        block = self.ensure_translated(self.machine.image.entry)
        self.cpu.pc = block.addr

    def ensure_translated(self, orig: int) -> TBlock:
        """Return the resident block for *orig*, translating on miss.

        With ``prefetch_depth > 0`` the miss is serviced as one batched
        exchange: the demanded chunk plus up to *depth* non-resident
        successors, installed speculatively after the demand install.
        """
        stats = self.stats
        self._charge(self.costs.map_lookup_cycles)
        block = self.tcache.lookup(orig)
        if block is not None and block.alive:
            stats.map_hits += 1
            if block.prefetched:
                block.prefetched = False
                stats.prefetch_hits += 1
            self._policy.on_hit(block)
            return block
        ctl = self._control
        if ctl is not None and ctl.pending:
            self._apply_admin(ctl)
        self._sync_epoch()
        trc = self.tracer
        miss_start = self.cpu.cycles if trc is not None else 0
        t0 = perf_counter()
        # NOTE: chunk/payload are re-bound from the exchange result —
        # an outage replay re-serves them, and if a publish landed
        # mid-outage the replayed pairs are the *new* version's;
        # installing the pre-exchange capture would be a torn write.
        if self.prefetch_depth > 0:
            batch = self.mc.serve_batch(orig, self.prefetch_depth,
                                        self._batch_filter)
            stats.miss_serve_host_s += perf_counter() - t0
            seconds, batch = self._exchange_chunk(orig, batch,
                                                  batched=True)
            chunk, payload = batch[0]
        else:
            batch = None
            chunk = self.mc.serve_chunk(orig)
            payload = self.mc.payload_of(chunk)
            stats.miss_serve_host_s += perf_counter() - t0
            seconds, pairs = self._exchange_chunk(
                orig, [(chunk, payload)], batched=False)
            chunk, payload = pairs[0]
        stats.miss_link_cycles += self._charge_link(seconds)
        self._charge(self.costs.mc_service_cycles)
        stats.miss_serve_cycles += self.costs.mc_service_cycles
        t0 = perf_counter()
        for attempt in (0, 1):
            try:
                self._make_space(chunk.size)
                addr = self.tcache.place(chunk.size)
                block = TBlock(orig=orig, addr=addr, size=chunk.size,
                               orig_size=chunk.orig_size,
                               extra_words=chunk.extra_words,
                               name=chunk.name, epoch=self._epoch)
                self._install(block, chunk, payload)
                self.tcache.commit(block)
                self._policy.on_install(block, prefetched=False)
                if self.debug_poison:
                    self.tcache.assert_invariants()
                break
            except _StubExhausted:
                if attempt:
                    raise SoftCacheError(
                        "stub area exhausted even after a flush; "
                        "increase stub_capacity")
                self.flush()
        stats.translations += 1
        if self.record_timeline:
            stats.translation_timestamps.append(self.cpu.cycles)
        stats.words_installed += len(chunk.words)
        stats.extra_words_installed += chunk.extra_words
        install_cycles = (self.costs.install_fixed_cycles +
                          self.costs.install_per_word_cycles
                          * len(chunk.words))
        self._charge(install_cycles)
        stats.miss_install_cycles += install_cycles
        stats.miss_install_host_s += perf_counter() - t0
        if trc is not None:
            dur = self.cpu.cycles - miss_start
            trc.emit("cc.miss", "cc", miss_start, dur=dur, orig=orig,
                     name=chunk.name, size=chunk.size,
                     batch=len(batch) if batch is not None else 1)
            self._miss_latency.observe(dur)
        if batch is not None:
            for extra_chunk, extra_payload in batch[1:]:
                self._install_prefetched(extra_chunk, extra_payload)
        return block

    def _is_resident(self, orig: int) -> bool:
        block = self.tcache.lookup(orig)
        return block is not None and block.alive

    # -- miss exchange / degraded resident mode ---------------------------

    def _exchange_chunk(self, orig: int, pairs, *,
                        batched: bool) -> tuple[float, list]:
        """One chunk RPC (single or batched reply), fault-aware.

        *pairs* is ``[(chunk, payload), ...]``, demanded chunk first.
        On a fault-free channel this is exactly the seed exchange; with
        faults installed the reply payloads and their header checksums
        are staged first (so corruption is detected on real bytes), and
        an exhausted retry budget drops into degraded resident mode.

        Returns ``(link seconds, delivered pairs)``.  The delivered
        pairs are what the caller must install: an outage replay
        re-serves them, and when a publish lands mid-outage the fresh
        pairs belong to the epoch the client crossed to — installing
        the pre-outage capture would be a torn version.
        """
        sizes = [c.payload_bytes for c, _ in pairs]
        if self._stager is not None:
            mc = self.mc
            self._stager([(p, mc.checksum_of(c)) for c, p in pairs])
        try:
            if batched:
                return self.channel.batch_exchange("chunk", sizes), pairs
            return self.channel.exchange("chunk", sizes[0]), pairs
        except LinkDown as down:
            seconds, pairs = self._replay_after_reconnect(orig, batched)
            return down.seconds + seconds, pairs

    def _replay_after_reconnect(self, orig: int,
                                batched: bool) -> tuple[float, list]:
        """Degraded resident mode: the link is down mid-miss.

        Resident chunks would keep executing — it is only this miss
        that cannot make progress — so the blocking-RPC model shows the
        outage as a recorded stall: the miss is parked on
        ``pending_misses``, reconnect epochs are waited out (charged as
        ``degraded_stall_cycles``, not link time), and the miss is
        replayed — re-served by the MC (which may have crash-restarted;
        rewriting is deterministic, so the replayed chunks are
        byte-identical) and re-exchanged until it lands.  Returns the
        link seconds of the replay attempts and the pairs the last,
        successful exchange actually delivered.
        """
        stats = self.stats
        stats.link_down_traps += 1
        stats.link_down_by_chunk[orig] = \
            stats.link_down_by_chunk.get(orig, 0) + 1
        stats.degraded_entries += 1
        self.pending_misses.append(orig)
        self.pending_miss_epochs[orig] = self._epoch
        trc = self.tracer
        if trc is not None:
            trc.emit("cc.degraded_enter", "cc", orig=orig,
                     pending=len(self.pending_misses))
        channel = self.channel
        costs = self.costs
        seconds = 0.0
        stall_cycles = 0
        for _ in range(1000):
            stall_s = channel.wait_reconnect()
            cycles = int(stall_s * costs.cpu_hz)
            self._charge(cycles)
            stats.degraded_stall_cycles += cycles
            stall_cycles += cycles
            # a publish (or an MC crash-restart rolling one back) may
            # have landed during the outage: cross the barrier before
            # re-serving, so the replay resolves to exactly one
            # version — the one this client is at when it installs
            self._sync_epoch()
            if self.debug_poison:
                from .debug import check_consistency
                check_consistency(self)
            # re-issue the request: re-serve from the MC (re-priming
            # any hub key plumbing) and re-stage the reply payloads
            if batched:
                pairs = self.mc.serve_batch(orig, self.prefetch_depth,
                                            self._batch_filter)
            else:
                chunk = self.mc.serve_chunk(orig)
                pairs = [(chunk, self.mc.payload_of(chunk))]
            sizes = [c.payload_bytes for c, _ in pairs]
            if self._stager is not None:
                mc = self.mc
                self._stager([(p, mc.checksum_of(c)) for c, p in pairs])
            try:
                if batched:
                    seconds += channel.batch_exchange("chunk", sizes)
                else:
                    seconds += channel.exchange("chunk", sizes[0])
            except LinkDown as down:
                seconds += down.seconds
                continue
            self.pending_misses.remove(orig)
            self.pending_miss_epochs.pop(orig, None)
            stats.pending_miss_replays += 1
            if trc is not None:
                trc.emit("cc.degraded_exit", "cc", orig=orig,
                         stall_cycles=stall_cycles)
            return seconds, pairs
        raise SoftCacheError(
            f"miss on {orig:#x} never delivered across 1000 reconnect "
            f"epochs; the fault plan cannot make progress")

    def _install_prefetched(self, chunk: Chunk, payload: bytes) -> None:
        """Install a speculative chunk from a batched reply.

        Prefetch never evicts resident code and never triggers a
        flush: if the chunk does not fit — tcache space or stub /
        redirector headroom — it is dropped on the floor (the bytes
        were already paid for on the link; that is the wasted-prefetch
        risk the depth knob trades against).
        """
        stats = self.stats
        trc = self.tracer
        existing = self.tcache.lookup(chunk.orig)
        if existing is not None and existing.alive:
            return  # became resident while the batch installed
        try:
            fits = not self.tcache.needs_eviction(chunk.size)
        except TCacheFull:
            fits = False  # larger than the whole tcache
        if not fits or not self._prefetch_headroom(chunk):
            stats.prefetch_drops += 1
            stats.prefetch_dropped_bytes += chunk.payload_bytes
            if trc is not None:
                trc.emit("cc.prefetch_drop", "cc", orig=chunk.orig,
                         size=chunk.size,
                         reason="nospace" if not fits else "headroom")
            return
        t0 = perf_counter()
        addr = self.tcache.place(chunk.size)
        block = TBlock(orig=chunk.orig, addr=addr, size=chunk.size,
                       orig_size=chunk.orig_size,
                       extra_words=chunk.extra_words,
                       name=chunk.name, prefetched=True,
                       epoch=self._epoch)
        self._install(block, chunk, payload)
        self.tcache.commit(block)
        self._policy.on_install(block, prefetched=True)
        if self.debug_poison:
            self.tcache.assert_invariants()
        stats.translations += 1
        stats.prefetch_installs += 1
        if self.record_timeline:
            stats.translation_timestamps.append(self.cpu.cycles)
        stats.words_installed += len(chunk.words)
        stats.extra_words_installed += chunk.extra_words
        install_cycles = (self.costs.install_fixed_cycles +
                          self.costs.install_per_word_cycles
                          * len(chunk.words))
        self._charge(install_cycles)
        stats.miss_install_cycles += install_cycles
        stats.miss_install_host_s += perf_counter() - t0
        if trc is not None:
            trc.emit("cc.prefetch_install", "cc", orig=chunk.orig,
                     name=chunk.name, size=chunk.size)

    def _prefetch_headroom(self, chunk: Chunk) -> bool:
        """Whether installing *chunk* cannot exhaust fixed areas."""
        return True

    def _make_space(self, nbytes: int) -> None:
        tcache = self.tcache
        if not tcache.needs_eviction(nbytes):
            return
        policy = self._policy
        while True:
            if policy.on_evict_candidate(tcache.oldest()) == FLUSH:
                self.flush()
                return
            self._evict_oldest()
            if not tcache.needs_eviction(nbytes):
                return

    def pin_original(self, orig: int) -> TBlock:
        """Translate the chunk at *orig* into the permanent pinned
        area (§4: pinning without wasting space).  Must be called
        before the address is translated normally — typically right
        after construction, for interrupt handlers and similar
        latency-critical code.
        """
        existing = self.tcache.lookup(orig)
        if existing is not None:
            if existing.pinned:
                return existing
            raise SoftCacheError(
                f"{orig:#x} is already resident unpinned; pin before "
                f"running")
        self._sync_epoch()
        chunk = self.mc.serve_chunk(orig)
        seconds, pairs = self._exchange_chunk(
            orig, [(chunk, self.mc.payload_of(chunk))], batched=False)
        chunk, payload = pairs[0]
        self._charge_link(seconds)
        self._charge(self.costs.mc_service_cycles)
        addr = self.tcache.place_pinned(chunk.size)
        block = TBlock(orig=orig, addr=addr, size=chunk.size,
                       orig_size=chunk.orig_size,
                       extra_words=chunk.extra_words, name=chunk.name,
                       epoch=self._epoch)
        self._install(block, chunk, payload)
        self.tcache.commit_pinned(block)
        self.stats.translations += 1
        self.stats.words_installed += len(chunk.words)
        self._charge(self.costs.install_fixed_cycles +
                     self.costs.install_per_word_cycles
                     * len(chunk.words))
        if self.tracer is not None:
            self.tracer.emit("cc.pin", "cc", orig=orig, size=chunk.size)
        return block

    def _install(self, block: TBlock, chunk: Chunk,
                 payload: bytes) -> None:
        raise NotImplementedError

    # -- eviction / flush -------------------------------------------------------

    def _evict_oldest(self) -> None:
        block = self.tcache.retire_oldest()
        self._policy.on_evict(block)
        if self.tracer is not None:
            self.tracer.emit("cc.evict", "cc", orig=block.orig,
                             addr=block.addr, size=block.size,
                             wasted=block.prefetched)
        self._unlink_block(block)
        if self.debug_poison:
            self.mem.write_bytes(
                block.addr, _BREAK_WORD.to_bytes(4, "little")
                * (block.size // 4))
        self.stats.evictions += 1
        if self.record_timeline:
            self.stats.eviction_timestamps.append(self.cpu.cycles)
        self._charge(self.costs.evict_per_block_cycles)

    def flush(self) -> None:
        """Drop the entire tcache and repair every live code pointer."""
        raise NotImplementedError

    def _unlink_block(self, block: TBlock) -> None:
        raise NotImplementedError

    # -- word patching ------------------------------------------------------------

    def _patch_site(self, site_addr: int, kind: SiteKind,
                    target: int) -> None:
        """Repoint the control-transfer word at *site_addr* to *target*."""
        t0 = perf_counter()
        mem = self.mem
        if kind is SiteKind.BRANCH:
            word = mem.read_word(site_addr)
            mem.write_word(site_addr,
                           patch_branch_disp(word, site_addr, target))
        elif kind in (SiteKind.JUMP, SiteKind.CALL):
            word = mem.read_word(site_addr)
            mem.write_word(site_addr, patch_jump_target(word, target))
        elif kind is SiteKind.CONTJ:
            mem.write_word(site_addr, _jump_word(Op.J, target >> 2))
        else:  # pragma: no cover
            raise SoftCacheError(f"cannot patch site kind {kind}")
        self.stats.patches += 1
        self.stats.miss_patch_cycles += self.costs.patch_cycles
        self._charge(self.costs.patch_cycles)
        self.stats.miss_patch_host_s += perf_counter() - t0
        if self.tracer is not None:
            self._trace_patch(site_addr, target, kind)

    def _trace_patch(self, site_addr: int, target: int,
                     kind: SiteKind) -> None:
        """Emit the backpatch event + patch-distance observation."""
        distance = abs(target - site_addr)
        self.tracer.emit("cc.patch", "cc", site=site_addr,
                         target=target, kind=kind.value,
                         distance=distance)
        self._patch_distance.observe(distance)

    # -- guest-visible invalidation -------------------------------------------------

    def invalidate_original_range(self, addr: int, length: int) -> None:
        """Guest declared code in [addr, addr+length) rewritten (§2.1).

        Like the fast simulators the paper cites, we invalidate the
        tcache in its entirety (infrequent by contract) and drop the
        MC's cached chunks for the range.
        """
        self.stats.guest_invalidations += 1
        if self.tracer is not None:
            self.tracer.emit("cc.guest_invalidate", "cc", addr=addr,
                             length=length)
        self.mc.invalidate_chunks(addr, length)
        overlaps = any(
            b.orig < addr + length and addr < b.orig + b.orig_size
            for b in self.tcache.order)
        if overlaps:
            self.flush()

    # -- ops-plane control (applied at miss boundaries) --------------------

    def _apply_admin(self, ctl) -> None:
        """Drain the control queue at a miss boundary.

        Each command is billed one MC service round trip of simulated
        time: a real CC would learn about the command from its server
        on the exchange it is already making.
        """
        for cmd in ctl.drain():
            self._charge(self.costs.mc_service_cycles)
            self.stats.admin_commands += 1
            try:
                result = self._admin_dispatch(cmd.verb, cmd.args)
            except (ValueError, TCacheFull, SoftCacheError) as exc:
                cmd.fail(str(exc))
            else:
                ctl.applied += 1
                cmd.complete(result)

    def _admin_dispatch(self, verb: str, args: dict) -> dict:
        if verb == "flush":
            return self.admin_flush()
        if verb == "set":
            return self.admin_set(**args)
        if verb == "resize":
            return self.admin_resize(**args)
        if verb == "publish":
            return self.admin_publish(**args)
        raise ValueError(f"unknown admin verb {verb!r}")

    def admin_flush(self) -> dict:
        """casadm-style ``flush``: drop every unpinned block now."""
        dropped = self.tcache.resident_blocks
        self.flush()
        return {"verb": "flush", "blocks_dropped": dropped}

    def admin_set(self, *, prefetch_depth: int | None = None,
                  jit: str | None = None,
                  jit_threshold: int | None = None,
                  policy: str | None = None) -> dict:
        """Retune the runtime knobs that are safe to flip mid-run.

        ``prefetch_depth`` shapes the *next* miss exchange (the check
        site runs before the serve path reads it); ``jit`` /
        ``jit_threshold`` steer the host-speed-only interpreter tier
        and can never change simulated counts; ``policy`` swaps the
        replacement policy (fresh metadata — a mid-run ``trrip`` has
        no temperature map and degrades to neutral seeding).
        """
        applied: dict = {"verb": "set"}
        if policy is not None:
            self._set_policy(policy)
            applied["policy"] = self.policy
        if prefetch_depth is not None:
            depth = int(prefetch_depth)
            if depth < 0:
                raise ValueError("prefetch_depth must be >= 0")
            self.prefetch_depth = depth
            applied["prefetch_depth"] = depth
        if jit is not None:
            if jit not in ("off", "hot", "all"):
                raise ValueError(f"unknown jit mode {jit!r}")
            self.cpu.jit = jit
            applied["jit"] = jit
        if jit_threshold is not None:
            threshold = int(jit_threshold)
            if threshold < 1:
                raise ValueError("jit_threshold must be >= 1")
            self.cpu.jit_threshold = threshold
            applied["jit_threshold"] = threshold
        if len(applied) == 1:
            raise ValueError("admin set: no knob given")
        return applied

    def admin_publish(self, *, image: str) -> dict:
        """Hot-patch: load an image file and publish it to this
        client's MC.  The epoch bump is observed at this very miss
        boundary (``_sync_epoch`` runs right after the admin drain),
        so the update barrier crosses before the miss is served."""
        from .update import image_digest, load_image
        try:
            new_image = load_image(image)
        except OSError as exc:
            raise ValueError(str(exc)) from None
        epoch = self.mc.publish(new_image)
        return {"verb": "publish", "epoch": epoch,
                "digest": image_digest(new_image)}

    def admin_resize(self, *, tcache_size: int) -> dict:
        """Resize the effective block area within the boot geometry.

        The flush is mandatory — resident blocks are pinned in place
        by every patched word that targets them — and is billed to
        simulated time like any flush, so a resize shows up in the
        figures as the miss storm it would really cause.
        """
        new_size = int(tcache_size)
        old_size = self.tcache.size
        # validate before flushing so a rejected resize is a no-op
        if not 0 < new_size <= self.tcache.geom.size:
            raise ValueError(
                f"tcache size must be in (0, {self.tcache.geom.size}] "
                f"bytes (boot geometry is the hardware ceiling); "
                f"got {new_size}")
        self.flush()
        self.tcache.resize(new_size)
        # the geometry changed under the policy: clear *all* metadata,
        # including per-address history an ordinary flush preserves
        self._policy.reset()
        return {"verb": "resize", "tcache_size": new_size,
                "previous_size": old_size}

    # -- reporting --------------------------------------------------------------------

    @property
    def local_memory_in_use(self) -> dict[str, int]:
        """Byte accounting of the CC's local memory areas."""
        tc = self.tcache
        return {
            "tcache_capacity": tc.size,
            "tcache_used": tc.used_bytes,
            "stub_bytes": tc.stub_bytes_in_use,
            "redirector_bytes": tc.redirector_bytes_in_use,
            "pinned_bytes": tc.pinned_bytes_in_use,
            "map_bytes": tc.map_bytes,
        }


class BlockCacheController(BaseCacheController):
    """SPARC-prototype CC: block/EBB chunks with full invalidation."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stubs: dict[int, Stub] = {}
        self.cont_slots: dict[int, ContSlot] = {}
        self.jr_sites: dict[int, JRSite] = {}
        self._stub_ids = _IdAlloc()
        self._cont_ids = _IdAlloc()
        self._jr_ids = _IdAlloc()
        #: CONTJ links of *standalone* slots, for garbage collection.
        self._contj_links: dict[int, Link] = {}

    # -- install ---------------------------------------------------------------

    _SITE_KIND = {ExitKind.TAKEN: SiteKind.BRANCH,
                  ExitKind.JUMP: SiteKind.JUMP,
                  ExitKind.CALL: SiteKind.CALL}

    def _install(self, block: TBlock, chunk: Chunk,
                 payload: bytes) -> None:
        # one patch pass over a local bytearray of the pre-encoded
        # payload, then a single write into the tcache: the install is
        # O(exits) word stores plus one memcpy instead of a per-word
        # re-encode (the bulk-install fast lane).
        buf = bytearray(payload)
        words = _word_view(buf)
        addr = block.addr
        for ex in chunk.exits:
            site = addr + 4 * ex.index
            kind = ex.kind
            if kind in self._SITE_KIND:
                site_kind = self._SITE_KIND[kind]
                if ex.target == chunk.orig:
                    dst = block  # tight self-loop: chain immediately
                else:
                    dst = self.tcache.lookup(ex.target)
                if dst is not None and dst.alive:
                    words[ex.index] = self._retarget_word(
                        words[ex.index], site_kind, site, dst.addr)
                    link = Link(site, site_kind, block, dst, ex.target)
                    block.outgoing.add(link)
                    dst.incoming.add(link)
                else:
                    stub = self._new_stub(ex.target, site, site_kind, block)
                    block.stubs.add(stub)
                    words[ex.index] = self._retarget_word(
                        words[ex.index], site_kind, site, stub.addr)
            elif kind is ExitKind.CONT:
                slot = self._new_cont_slot(site, ex.target, block, "trap")
                words[ex.index] = _trap_word(Trap.MISS_RET, slot.slot_id)
            elif kind is ExitKind.CONT_INLINE:
                self._new_cont_slot(site, ex.target, block, "inline")
                # the continuation code itself sits here; word untouched
            elif kind in (ExitKind.JR, ExitKind.JALR):
                jr_id = self._jr_ids.alloc()
                cont_addr = site + 4 if kind is ExitKind.JALR else 0
                rec = JRSite(jr_id, ex.rs1, ex.rd, cont_addr, block)
                self.jr_sites[jr_id] = rec
                block.jr_sites.append(rec)
                words[ex.index] = _trap_word(Trap.MISS_JR, jr_id)
            else:  # pragma: no cover
                raise SoftCacheError(f"unexpected exit kind {kind}")
        self.mem.write_bytes(addr, bytes(buf))

    def _prefetch_headroom(self, chunk: Chunk) -> bool:
        # worst case every patchable exit whose target is neither
        # resident nor the chunk itself needs a fresh stub word; the
        # admission check is conservative (standalone-slot GC could
        # free more) because a prefetch must never trigger the
        # flush-and-retry path a demand miss is allowed.
        needed = 0
        for ex in chunk.exits:
            if ex.kind in self._SITE_KIND and ex.target != chunk.orig:
                dst = self.tcache.lookup(ex.target)
                if dst is None or not dst.alive:
                    needed += 1
        return needed <= self.tcache.free_stub_slots

    @staticmethod
    def _retarget_word(word: int, kind: SiteKind, site: int,
                       target: int) -> int:
        if kind is SiteKind.BRANCH:
            return patch_branch_disp(word, site, target)
        return patch_jump_target(word, target)

    # -- stub / slot management -----------------------------------------------------

    def _alloc_stub_slot(self) -> int:
        """Allocate a stub word, garbage-collecting unreferenced
        standalone return slots under pressure."""
        addr = self.tcache.alloc_stub()
        if addr is None:
            self._gc_standalone_slots()
            addr = self.tcache.alloc_stub()
            if addr is None:
                raise _StubExhausted
        return addr

    def _gc_standalone_slots(self) -> None:
        """Free standalone return slots no live return address holds.

        Standalone slots are reachable only through ra values (that is
        their whole purpose), so one stack walk identifies the live
        set; everything else is reclaimed.
        """
        live_values = {value for _, _, value
                       in self._collect_ra_holders()}
        for slot in list(self.cont_slots.values()):
            if (slot.block is not None or not slot.live
                    or slot.addr in live_values):
                continue
            link = self._contj_links.pop(slot.slot_id, None)
            if link is not None and link.dst.alive:
                link.dst.incoming.discard(link)
            self._free_cont_slot(slot)

    def _new_stub(self, orig_target: int, site_addr: int,
                  site_kind: SiteKind, src: TBlock | None) -> Stub:
        slot_addr = self._alloc_stub_slot()
        stub_id = self._stub_ids.alloc()
        stub = Stub(stub_id, slot_addr, orig_target, site_addr,
                    site_kind, src, epoch=self._epoch)
        self.stubs[stub_id] = stub
        self.mem.write_word(slot_addr,
                            _trap_word(Trap.MISS_BRANCH, stub_id))
        self.stats.stubs_created += 1
        self.stats.stubs_peak_bytes = max(
            self.stats.stubs_peak_bytes, self.tcache.stub_bytes_in_use)
        return stub

    def _free_stub(self, stub: Stub) -> None:
        if not stub.live:
            return
        stub.live = False
        self.stubs.pop(stub.stub_id, None)
        self._stub_ids.free(stub.stub_id)
        self.tcache.free_stub(stub.addr)
        if stub.src is not None:
            stub.src.stubs.discard(stub)

    def _new_cont_slot(self, addr: int, orig_target: int,
                       block: TBlock | None, state: str) -> ContSlot:
        slot_id = self._cont_ids.alloc()
        slot = ContSlot(slot_id, addr, orig_target, block, state)
        self.cont_slots[slot_id] = slot
        if block is not None:
            block.cont_slots.append(slot)
        return slot

    def _new_standalone_slot(self, orig_target: int) -> ContSlot:
        """A return stub in the stub area (created by stack fixing)."""
        addr = self._alloc_stub_slot()
        slot = self._new_cont_slot(addr, orig_target, None, "trap")
        self.mem.write_word(addr, _trap_word(Trap.MISS_RET, slot.slot_id))
        self.stats.stubs_created += 1
        return slot

    def _free_cont_slot(self, slot: ContSlot) -> None:
        if not slot.live:
            return
        slot.live = False
        self.cont_slots.pop(slot.slot_id, None)
        self._contj_links.pop(slot.slot_id, None)
        self._cont_ids.free(slot.slot_id)
        if slot.block is None:
            self.tcache.free_stub(slot.addr)

    # -- miss handlers ----------------------------------------------------------------

    def _miss_branch(self, operand: int) -> int:
        stub = self.stubs.get(operand)
        if stub is None or not stub.live:
            raise SoftCacheError(f"trap on dead stub id {operand}")
        self.stats.branch_miss_traps += 1
        if self.tracer is not None:
            self.tracer.emit("cc.trap", "cc", kind="branch", id=operand)
        self._charge(self.costs.trap_overhead_cycles)
        target = self.ensure_translated(stub.orig_target)
        # the source block may have been evicted while we translated
        if stub.live and (stub.src is None or stub.src.alive):
            self._patch_site(stub.site_addr, stub.site_kind, target.addr)
            link = Link(stub.site_addr, stub.site_kind, stub.src, target,
                        stub.orig_target)
            if stub.src is not None:
                stub.src.outgoing.add(link)
            target.incoming.add(link)
            self._free_stub(stub)
        return target.addr

    def _miss_ret(self, operand: int) -> int:
        slot = self.cont_slots.get(operand)
        if slot is None or not slot.live:
            raise SoftCacheError(f"return to dead cont slot {operand}")
        self.stats.ret_miss_traps += 1
        if self.tracer is not None:
            self.tracer.emit("cc.trap", "cc", kind="ret", id=operand)
        self._charge(self.costs.trap_overhead_cycles)
        target = self.ensure_translated(slot.orig_target)
        if slot.live and (slot.block is None or slot.block.alive):
            self.mem.write_word(slot.addr, _jump_word(Op.J, target.addr >> 2))
            slot.state = "jump"
            link = Link(slot.addr, SiteKind.CONTJ, slot.block, target,
                        slot.orig_target, aux=slot)
            if slot.block is not None:
                slot.block.outgoing.add(link)
            else:
                self._contj_links[slot.slot_id] = link
            target.incoming.add(link)
            self.stats.patches += 1
            self.stats.miss_patch_cycles += self.costs.patch_cycles
            self._charge(self.costs.patch_cycles)
            if self.tracer is not None:
                self._trace_patch(slot.addr, target.addr, SiteKind.CONTJ)
        return target.addr

    def _miss_jr(self, operand: int) -> int:
        site = self.jr_sites.get(operand)
        if site is None or not site.live:
            raise SoftCacheError(f"trap on dead jr site {operand}")
        self.stats.jr_lookups += 1
        self._charge(self.costs.trap_overhead_cycles +
                     self.costs.map_lookup_cycles)
        value = self.cpu.regs[site.rs1]
        if self.tcache.in_tcache_range(value):
            target_addr = value
        else:
            # only non-resident computed jumps are trace-worthy: the
            # resident fast path runs once per jr execution and would
            # flood the recorder with uninformative events
            if self.tracer is not None:
                self.tracer.emit("cc.trap", "cc", kind="jr", id=operand)
            target_addr = self.ensure_translated(value).addr
        if site.rd:
            # jalr: the link register receives the continuation slot
            self.cpu.set_reg(site.rd, site.cont_addr)
        return target_addr

    # -- invalidation --------------------------------------------------------------------

    def _unlink_block(self, block: TBlock) -> None:
        if block.prefetched:
            block.prefetched = False
            self.stats.wasted_prefetch_bytes += block.size
        # 1. incoming pointers: repoint at fresh miss stubs / traps
        # (iterate a snapshot: stub allocation may GC standalone slots,
        # which mutates incoming indexes)
        for link in list(block.incoming):
            if link.src is block:
                continue  # self-link dies with the block
            if link.kind is SiteKind.CONTJ:
                slot: ContSlot = link.aux  # type: ignore[assignment]
                if slot.live and (slot.block is None or slot.block.alive):
                    self.mem.write_word(
                        slot.addr,
                        _trap_word(Trap.MISS_RET, slot.slot_id))
                    slot.state = "trap"
                    if slot.block is None:
                        self._contj_links.pop(slot.slot_id, None)
                    if link.src is not None and link.src.alive:
                        link.src.outgoing.discard(link)
            elif link.src is not None and link.src.alive:
                stub = self._new_stub(link.orig_target, link.site_addr,
                                      link.kind, link.src)
                link.src.stubs.add(stub)
                self._patch_site(link.site_addr, link.kind, stub.addr)
                link.src.outgoing.discard(link)
        block.incoming.clear()
        # 2. outgoing pointers: drop reverse registrations
        for link in block.outgoing:
            if link.dst.alive:
                link.dst.incoming.discard(link)
        block.outgoing.clear()
        # 3. unresolved stubs and jr sites owned by the block
        for stub in list(block.stubs):
            self._free_stub(stub)
        for site in block.jr_sites:
            site.live = False
            self.jr_sites.pop(site.site_id, None)
            self._jr_ids.free(site.site_id)
        block.jr_sites.clear()
        # 4. return addresses pointing into the block (stack walk)
        if block.cont_slots:
            self._fix_ra_holders_for(block)
            for slot in block.cont_slots:
                self._free_cont_slot(slot)
            block.cont_slots.clear()

    def _fix_ra_holders_for(self, block: TBlock) -> None:
        slot_by_addr = {s.addr: s for s in block.cont_slots if s.live}
        fresh_by_value: dict[int, ContSlot] = {}
        for kind, loc, value in self._collect_ra_holders():
            if not block.contains(value):
                continue
            slot = slot_by_addr.get(value)
            if slot is None:
                raise SoftCacheError(
                    f"return address {value:#x} points into block "
                    f"{block.orig:#x} but matches no continuation slot")
            fresh = fresh_by_value.get(value)
            if fresh is None:
                fresh = self._new_standalone_slot(slot.orig_target)
                fresh_by_value[value] = fresh
            self._write_ra_holder(kind, loc, fresh.addr)

    def _collect_ra_holders(self) -> list[tuple[str, int, int]]:
        """Find every live location holding a tcache code pointer.

        By the programming-model contract (§2.1) these are exactly the
        ``ra`` register and the per-frame return-address slot at
        ``fp - 4``, with frames linked through ``fp - 8`` down to the
        crt0 sentinel.
        """
        out: list[tuple[str, int, int]] = []
        regs = self.cpu.regs
        value = regs[RA]
        if self.tcache.in_tcache_range(value):
            out.append(("reg", RA, value))
        fp = regs[FP]
        mem = self.mem
        walk_cost = self.costs.stack_walk_per_frame_cycles
        guard = 0
        while fp != FP_SENTINEL and guard < 1_000_000:
            try:
                slot_value = mem.read_word(fp - 4)
                next_fp = mem.read_word(fp - 8)
            except Exception:
                break  # fp chain left the stack: stop defensively
            if self.tcache.in_tcache_range(slot_value):
                out.append(("mem", fp - 4, slot_value))
            self._charge(walk_cost)
            fp = next_fp
            guard += 1
        return out

    def _write_ra_holder(self, kind: str, loc: int, value: int) -> None:
        if kind == "reg":
            self.cpu.set_reg(loc, value)
        else:
            self.mem.write_word(loc, value)
        self.stats.stack_slots_fixed += 1

    def flush(self) -> None:
        """Drop every unpinned block; pinned blocks, standalone return
        stubs and redirector-free bookkeeping survive."""
        self.stats.flushes += 1
        blocks = self.tcache.retire_all()
        if self.tracer is not None:
            self.tracer.emit("cc.flush", "cc", blocks=len(blocks))
        self.stats.blocks_flushed += len(blocks)
        if self.record_timeline:
            now = self.cpu.cycles
            self.stats.eviction_timestamps.extend([now] * len(blocks))
        try:
            for block in blocks:
                self._unlink_block(block)
        except _StubExhausted:
            raise SoftCacheError(
                "stub area exhausted while repairing pointers during a "
                "flush; increase stub_capacity") from None
        self.cpu.invalidate_all_decoded()
        self._charge(self.costs.evict_per_block_cycles * len(blocks))
        self._policy.on_flush()


class ProcCacheController(BaseCacheController):
    """ARM-prototype CC: procedure chunks + permanent redirectors."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.redirectors: dict[int, Redirector] = {}
        self._redirector_by_site: dict[tuple[int, int], Redirector] = {}
        self._rid_alloc = _IdAlloc()

    # -- install -----------------------------------------------------------

    def _install(self, block: TBlock, chunk: Chunk,
                 payload: bytes) -> None:
        buf = bytearray(payload)
        words = _word_view(buf)
        addr = block.addr
        for ex in chunk.exits:
            if ex.kind is ExitKind.INTERNAL:
                # intra-procedure absolute jump: rebase onto placement
                words[ex.index] = patch_jump_target(
                    words[ex.index], addr + ex.target)
            elif ex.kind is ExitKind.CALLSITE:
                redir = self._redirector_for(chunk.orig, ex)
                words[ex.index] = patch_jump_target(
                    words[ex.index], redir.addr)
                # the permanent landing now returns into this placement
                ret_target = addr + ex.ret_offset
                self.mem.write_word(redir.addr + 4,
                                    _jump_word(Op.J, ret_target >> 2))
                link = Link(redir.addr + 4, SiteKind.LANDING, None,
                            block, ex.target, aux=redir)
                block.incoming.add(link)
            else:  # pragma: no cover - chunker emits only these kinds
                raise SoftCacheError(f"unexpected exit kind {ex.kind}")
        self.mem.write_bytes(addr, bytes(buf))

    def _prefetch_headroom(self, chunk: Chunk) -> bool:
        # every call site without an existing redirector needs one
        # permanent two-word slot; a prefetched procedure must not be
        # the one that exhausts the area (that raises for demand
        # misses, which actually need the code).
        needed = sum(
            1 for ex in chunk.exits
            if ex.kind is ExitKind.CALLSITE
            and (chunk.orig, ex.index) not in self._redirector_by_site)
        return needed <= self.tcache.free_redirector_slots

    def _redirector_for(self, caller_orig: int, ex) -> Redirector:
        key = (caller_orig, ex.index)
        redir = self._redirector_by_site.get(key)
        if redir is not None:
            return redir
        addr = self.tcache.alloc_redirector()
        if addr is None:
            raise SoftCacheError(
                "redirector area full; increase redirector_capacity")
        rid = self._rid_alloc.alloc()
        redir = Redirector(rid, addr, caller_orig, ex.target,
                           ex.ret_offset)
        self.redirectors[rid] = redir
        self._redirector_by_site[key] = redir
        self.mem.write_word(addr, _trap_word(Trap.MISS_CALL, rid))
        self.mem.write_word(addr + 4, _trap_word(Trap.RET_LAND, rid))
        return redir

    # -- miss handlers --------------------------------------------------------

    def _miss_call(self, operand: int) -> int:
        redir = self.redirectors[operand]
        self.stats.call_miss_traps += 1
        if self.tracer is not None:
            self.tracer.emit("cc.trap", "cc", kind="call", id=operand)
        self._charge(self.costs.trap_overhead_cycles)
        callee = self.ensure_translated(redir.callee_orig)
        self.mem.write_word(redir.addr,
                            _jump_word(Op.JAL, callee.addr >> 2))
        callee.incoming.add(Link(redir.addr, SiteKind.RCALL, None,
                                 callee, redir.callee_orig, aux=redir))
        self.stats.patches += 1
        self.stats.miss_patch_cycles += self.costs.patch_cycles
        self._charge(self.costs.patch_cycles)
        if self.tracer is not None:
            self._trace_patch(redir.addr, callee.addr, SiteKind.RCALL)
        # emulate the jal the redirector now performs
        self.cpu.set_reg(RA, redir.addr + 4)
        return callee.addr

    def _ret_land(self, operand: int) -> int:
        redir = self.redirectors[operand]
        self.stats.landing_miss_traps += 1
        if self.tracer is not None:
            self.tracer.emit("cc.trap", "cc", kind="landing", id=operand)
        self._charge(self.costs.trap_overhead_cycles)
        caller = self.ensure_translated(redir.caller_orig)
        # installing the caller re-patched this landing already
        return caller.addr + redir.ret_offset

    # -- invalidation -------------------------------------------------------------

    def _unlink_block(self, block: TBlock) -> None:
        if block.prefetched:
            block.prefetched = False
            self.stats.wasted_prefetch_bytes += block.size
        for link in block.incoming:
            redir: Redirector = link.aux  # type: ignore[assignment]
            if link.kind is SiteKind.RCALL:
                self.mem.write_word(redir.addr,
                                    _trap_word(Trap.MISS_CALL, redir.rid))
            elif link.kind is SiteKind.LANDING:
                self.mem.write_word(redir.addr + 4,
                                    _trap_word(Trap.RET_LAND, redir.rid))
            else:  # pragma: no cover
                raise SoftCacheError(
                    f"unexpected incoming link kind {link.kind}")
        block.incoming.clear()
        # procedure blocks have no outgoing links, stubs or cont slots:
        # all inter-procedure control flows through redirectors.

    def flush(self) -> None:
        self.stats.flushes += 1
        blocks = self.tcache.retire_all()
        if self.tracer is not None:
            self.tracer.emit("cc.flush", "cc", blocks=len(blocks))
        self.stats.blocks_flushed += len(blocks)
        if self.record_timeline:
            now = self.cpu.cycles
            self.stats.eviction_timestamps.extend([now] * len(blocks))
        # revert the redirector words that pointed into dropped blocks;
        # redirectors serving pinned procedures stay patched
        for block in blocks:
            self._unlink_block(block)
        self.cpu.invalidate_all_decoded()
        self._charge(self.costs.evict_per_block_cycles * len(blocks))
        self._policy.on_flush()
