"""Bookkeeping records of the cache controller (CC).

These model the CC's runtime tables: resident translated blocks, the
links (patched branch words) between them, unresolved exit stubs and
return-continuation slots.  The paper's invalidation discussion is
exactly about maintaining these: "we need to find and change any and
all pointers that implicitly mark a basic block as valid" — pointers
embedded in instructions (tracked by :class:`Link`) and pointers in
data such as return addresses (tracked by :class:`ContSlot` plus the
stack walker).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LinkIndex:
    """Insertion-ordered identity set of bookkeeping records.

    The per-block link/stub indexes: eviction must drop a specific
    link from its counterpart block's index, which with plain lists is
    a linear scan per unlink (quadratic under thrashing).  A dict used
    as an ordered set keeps O(1) add/discard while preserving exactly
    the list iteration order the unlink path depends on (stub
    allocation order, and therefore stats, are unchanged).
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict = {}

    def add(self, item) -> None:
        self._items[item] = None

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def clear(self) -> None:
        self._items.clear()

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._items

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkIndex({list(self._items)!r})"


class SiteKind(enum.Enum):
    """What kind of patchable word a link's source site is."""

    BRANCH = "branch"   # B-format conditional branch (disp16 patch)
    JUMP = "jump"       # J-format unconditional jump (target26 patch)
    CALL = "call"       # JAL (target26 patch)
    CONTJ = "contj"     # return-continuation slot converted to J
    RCALL = "rcall"     # ARM variant: redirector entry JAL
    LANDING = "landing"  # ARM variant: redirector return landing J


@dataclass(slots=True, eq=False)
class TBlock:
    """One resident translated chunk in the tcache."""

    orig: int            # original text address of the chunk
    addr: int            # placement address in the tcache
    size: int            # bytes occupied in the tcache
    orig_size: int       # bytes of original text covered
    extra_words: int     # rewriting-added instructions
    name: str = ""       # procedure name (proc chunker) or ""
    alive: bool = True
    pinned: bool = False
    #: Installed speculatively by a batched (prefetch) reply and not
    #: yet entered; cleared on first demand hit, counted as wasted
    #: prefetch if still set at eviction time.
    prefetched: bool = False
    #: Image epoch whose text this block was translated from (live
    #: code update).  The epoch audit in ``check_consistency`` rejects
    #: a resident set that mixes epochs — the torn-version invariant.
    epoch: int = 0
    #: Links whose *site* lies inside this block.
    outgoing: LinkIndex = field(default_factory=LinkIndex)
    #: Links whose *target* lies inside this block (the eviction-time
    #: index: every word pointing at this block, maintained at patch
    #: time).
    incoming: LinkIndex = field(default_factory=LinkIndex)
    #: Unresolved exit stubs created for this block's exits.
    stubs: LinkIndex = field(default_factory=LinkIndex)
    #: Return-continuation slots inside this block (after calls).
    cont_slots: list["ContSlot"] = field(default_factory=list)
    #: Computed-jump sites inside this block.
    jr_sites: list["JRSite"] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass(slots=True, eq=False)
class Link:
    """A patched control-transfer word: *site* now points at *dst*.

    The branch word at ``site_addr`` inside ``src`` encodes that
    ``dst`` is valid — the paper's "state of the cache is implicit in
    the branch instructions".  On eviction of ``dst`` the site is
    repointed at a fresh miss stub for ``orig_target``.
    """

    site_addr: int
    kind: SiteKind
    src: TBlock | None   # None for sites outside any block (redirectors)
    dst: TBlock
    orig_target: int
    #: CONTJ: the ContSlot; RCALL/LANDING: the Redirector.
    aux: object | None = None


@dataclass(slots=True, eq=False)
class Stub:
    """An unresolved exit: a TRAP word in the stub area.

    ``site_addr``/``site_kind`` identify the branch word that currently
    points at this stub so it can be backpatched when the miss is
    taken.  ``src`` is the block owning the site (stub dies with it).
    """

    stub_id: int
    addr: int            # address of the TRAP word in the stub area
    orig_target: int
    site_addr: int
    site_kind: SiteKind
    src: TBlock | None
    live: bool = True
    #: Image epoch current when the stub was created (re-stamped by
    #: the update barrier: a stub targets an original address, so it
    #: stays valid across epochs once re-stamped).
    epoch: int = 0


@dataclass(slots=True, eq=False)
class JRSite:
    """A computed-jump site (jr/jalr) in a translated block.

    Every execution performs the hash-table lookup fallback of §2.1;
    there is nothing to backpatch because the target is in a register.
    """

    site_id: int
    rs1: int
    rd: int               # 0 for plain jr; link register for jalr
    cont_addr: int        # jalr: tcache address its rd should receive
    block: TBlock | None
    live: bool = True


@dataclass(slots=True, eq=False)
class Redirector:
    """ARM variant: a permanent two-word per-call-site stub.

    Word 0 (``addr``): ``jal <callee>`` when the callee is resident,
    else ``TRAP MISS_CALL rid``.  Word 1 (``addr + 4``): the permanent
    return landing pad — ``j <return point>`` while the caller is
    resident, else ``TRAP RET_LAND rid``.  Because ra always holds
    ``addr + 4``, no pointer into evictable memory ever escapes to the
    stack, which is why the ARM prototype needs no stack walking at
    invalidation time.
    """

    rid: int
    addr: int
    caller_orig: int      # procedure entry owning the call site
    callee_orig: int
    ret_offset: int       # byte offset of the return point in the caller


@dataclass(slots=True, eq=False)
class ContSlot:
    """A return-continuation slot: the word a call's ra points at.

    States: ``trap`` (TRAP MISS_RET, untranslated continuation),
    ``jump`` (converted to ``J target`` once translated) or ``inline``
    (EBB chunking: the continuation code itself sits at the slot, so
    returns land with zero overhead; the record exists only so the
    eviction stack-fixer can recognise the address).  Slots live
    either inside a block (right after its JAL) or standalone in the
    stub area (created when fixing the stack during eviction).
    """

    slot_id: int
    addr: int
    orig_target: int
    block: TBlock | None   # containing block; None if standalone
    state: str = "trap"    # "trap" | "jump" | "inline"
    live: bool = True
