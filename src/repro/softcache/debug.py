"""Introspection and validation tools for the SoftCache runtime.

* :func:`check_consistency` — audits the entire CC bookkeeping graph
  (blocks, links, stubs, continuation slots, redirectors) against the
  actual instruction words in the tcache.  Every pointer the cache
  state is encoded in is decoded and cross-checked.  The test suite
  runs this after exercising eviction/flush/pinning paths; it is also
  a debugging tool for anyone extending the controllers.
* :func:`architectural_state` — a digest of everything the *program*
  can observe (memory, registers, pc, exit code, output).  The fault
  layer's differential tests pin that any all-transient fault plan
  reaches the exact fault-free digest: faults may only cost time.
* :func:`dump_tcache` — human-readable listing of resident blocks
  with disassembly and link annotations.
* :func:`chunk_graph_dot` — Graphviz DOT export of the resident chunk
  graph (blocks as nodes, patched branch words as edges).
"""

from __future__ import annotations

import hashlib

from ..isa import (
    Op,
    Trap,
    branch_target,
    decode,
    disassemble_word,
    jump_target,
)
from .cc import BaseCacheController, BlockCacheController, ProcCacheController
from .records import SiteKind


class ConsistencyError(AssertionError):
    """The CC bookkeeping disagrees with the words in the tcache."""


def _site_target(cc: BaseCacheController, site_addr: int,
                 kind: SiteKind) -> int:
    """Decode where the patched word at *site_addr* points."""
    word = cc.mem.read_word(site_addr)
    ins = decode(word)
    if kind is SiteKind.BRANCH:
        if not ins.op.name.startswith("B"):
            raise ConsistencyError(
                f"link site {site_addr:#x} expected a branch, found "
                f"{disassemble_word(word)}")
        return branch_target(word, site_addr)
    if kind in (SiteKind.JUMP, SiteKind.CONTJ, SiteKind.LANDING):
        if ins.op is not Op.J:
            raise ConsistencyError(
                f"link site {site_addr:#x} expected j, found "
                f"{disassemble_word(word)}")
        return jump_target(word)
    if kind in (SiteKind.CALL, SiteKind.RCALL):
        if ins.op is not Op.JAL:
            raise ConsistencyError(
                f"link site {site_addr:#x} expected jal, found "
                f"{disassemble_word(word)}")
        return jump_target(word)
    raise ConsistencyError(f"unknown site kind {kind}")


def check_consistency(cc: BaseCacheController) -> int:
    """Audit the controller's bookkeeping; returns items checked.

    Raises :class:`ConsistencyError` on the first disagreement.
    """
    checked = 0
    tcache = cc.tcache
    resident = list(tcache.order) + list(tcache.pinned_blocks)

    # residency map <-> block lists
    for orig, block in tcache.map.items():
        if not block.alive:
            raise ConsistencyError(f"map holds dead block {orig:#x}")
        if block.orig != orig:
            raise ConsistencyError(
                f"map key {orig:#x} != block.orig {block.orig:#x}")
        if block not in resident:
            raise ConsistencyError(
                f"mapped block {orig:#x} not in residency lists")
        checked += 1

    for block in resident:
        # every resident block must be reachable from the link index
        if tcache.map.get(block.orig) is not block:
            raise ConsistencyError(
                f"resident block {block.orig:#x} unreachable from the "
                f"residency map")
        checked += 1
        # every incoming link's word must point into this block
        for link in block.incoming:
            target = _site_target(cc, link.site_addr, link.kind)
            if not block.contains(target):
                raise ConsistencyError(
                    f"incoming {link.kind.value} link at "
                    f"{link.site_addr:#x} points to {target:#x}, "
                    f"outside block [{block.addr:#x},{block.end:#x})")
            if link.src is not None and link not in link.src.outgoing:
                raise ConsistencyError(
                    f"incoming link at {link.site_addr:#x} missing "
                    f"from source block's outgoing list")
            checked += 1
        # every outgoing link must be registered at its destination
        for link in block.outgoing:
            if not block.contains(link.site_addr) and \
                    link.kind is not SiteKind.CONTJ:
                raise ConsistencyError(
                    f"outgoing link site {link.site_addr:#x} outside "
                    f"its source block")
            if not link.dst.alive:
                raise ConsistencyError(
                    f"outgoing link at {link.site_addr:#x} targets a "
                    f"dead block ({link.orig_target:#x})")
            if link not in link.dst.incoming:
                raise ConsistencyError(
                    f"outgoing link at {link.site_addr:#x} missing "
                    f"from destination's incoming list")
            checked += 1

    # degraded resident mode: a miss may only be parked while the
    # fault layer actually reports the link down
    pending = getattr(cc, "pending_misses", None)
    if pending and not getattr(cc.channel, "down", False):
        raise ConsistencyError(
            f"pending misses {[hex(a) for a in pending]} with the "
            f"link up")
    if pending is not None:
        checked += 1

    # live code update: the torn-version invariant.  The resident set
    # (pinned included) and the stub table must belong to exactly one
    # epoch — the one the controller observes — and a parked miss may
    # only be pending against an epoch its MC can still serve.  A
    # superblock is fused from tcache words of resident blocks, so a
    # single-epoch resident set also guarantees no superblock ever
    # fuses code from two epochs; the span check below enforces it
    # directly for every live decoded block.
    cc_epoch = getattr(cc, "_epoch", 0)
    epochs = {b.epoch for b in resident}
    if len(epochs) > 1:
        raise ConsistencyError(
            f"resident set mixes image epochs {sorted(epochs)}")
    if epochs and epochs != {cc_epoch}:
        raise ConsistencyError(
            f"resident blocks at epoch {epochs.pop()} but the "
            f"controller observes epoch {cc_epoch}")
    stub_table = getattr(cc, "stubs", None)
    if stub_table:
        bad = {s.epoch for s in stub_table.values()} - {cc_epoch}
        if bad:
            raise ConsistencyError(
                f"stubs at epochs {sorted(bad)} but the controller "
                f"observes epoch {cc_epoch}")
    servable = getattr(cc.mc, "epoch_servable", None)
    if servable is not None:
        miss_epochs = getattr(cc, "pending_miss_epochs", {})
        for orig in (pending or ()):
            epoch = miss_epochs.get(orig, cc_epoch)
            if not servable(epoch):
                raise ConsistencyError(
                    f"pending miss {orig:#x} parked against retired "
                    f"epoch {epoch}")
    span_map = getattr(cc.cpu, "_block_span", None)
    if span_map:
        in_range = tcache.in_tcache_range
        containing = tcache.block_containing
        for start, end in list(span_map.items()):
            if not in_range(start):
                continue
            first = containing(start)
            last = containing(end - 4)
            if first is not None and last is not None and \
                    first.epoch != last.epoch:
                raise ConsistencyError(
                    f"superblock [{start:#x},{end:#x}) fuses code "
                    f"from epochs {first.epoch} and {last.epoch}")
    checked += 1

    # replacement-policy metadata must only reference resident blocks
    policy = getattr(cc, "_policy", None)
    if policy is not None:
        resident = list(cc.tcache.order) + list(cc.tcache.pinned_blocks)
        problems = policy.audit(resident)
        if problems:
            raise ConsistencyError(
                f"policy {policy.name} metadata stale: "
                f"{'; '.join(problems)}")
        checked += 1

    if isinstance(cc, BlockCacheController):
        checked += _check_block_cc(cc)
    elif isinstance(cc, ProcCacheController):
        checked += _check_proc_cc(cc)
    return checked


def architectural_state(system) -> str:
    """SHA-256 digest of the program-visible state of *system*.

    Covers every memory region's bytes, the register file, pc, the
    exit code and the console output — and deliberately nothing
    derived from timing (cycles, stats, link counters), since those
    are exactly what transient link faults are allowed to change.
    """
    h = hashlib.sha256()
    for region in system.machine.mem.regions:
        h.update(region.name.encode())
        h.update(bytes(region.buf))
    cpu = system.machine.cpu
    for value in cpu.regs:
        h.update(int(value).to_bytes(8, "little", signed=True))
    h.update(int(cpu.pc).to_bytes(8, "little", signed=True))
    exit_code = cpu.exit_code if cpu.exit_code is not None else -1
    h.update(int(exit_code).to_bytes(8, "little", signed=True))
    h.update(system.machine.output_text.encode())
    return h.hexdigest()


def observable_state(system) -> str:
    """SHA-256 digest of what the program (and its operator) can
    observe across a *live code update*: the text mirror, the
    data/bss/heap bytes, the exit code and the console output.

    :func:`architectural_state` additionally hashes local RAM, the
    stack, registers and pc — all of which legitimately differ between
    a client hot-patched mid-run and a clean run of the new image
    (different tcache placements, different return-address values).
    The update differential therefore pins this digest: a code update
    may only change *code*, never the data the program computed.
    """
    h = hashlib.sha256()
    for region in system.machine.mem.regions:
        if region.name in ("text", "data"):
            h.update(region.name.encode())
            h.update(bytes(region.buf))
    cpu = system.machine.cpu
    exit_code = cpu.exit_code if cpu.exit_code is not None else -1
    h.update(int(exit_code).to_bytes(8, "little", signed=True))
    h.update(system.machine.output_text.encode())
    return h.hexdigest()


def _check_block_cc(cc: BlockCacheController) -> int:
    checked = 0
    for stub_id, stub in cc.stubs.items():
        if not stub.live:
            raise ConsistencyError(f"dead stub {stub_id} in table")
        word = cc.mem.read_word(stub.addr)
        ins = decode(word)
        if ins.op is not Op.TRAP or ins.rd != Trap.MISS_BRANCH or \
                ins.imm != stub_id:
            raise ConsistencyError(
                f"stub {stub_id} word at {stub.addr:#x} is "
                f"{disassemble_word(word)}")
        # the site the stub serves must currently point at the stub
        if stub.src is None or stub.src.alive:
            target = _site_target(cc, stub.site_addr, stub.site_kind)
            if target != stub.addr:
                raise ConsistencyError(
                    f"site {stub.site_addr:#x} of stub {stub_id} "
                    f"points to {target:#x}, not the stub")
        checked += 1
    for slot_id, slot in cc.cont_slots.items():
        if not slot.live:
            raise ConsistencyError(f"dead cont slot {slot_id} in table")
        word = cc.mem.read_word(slot.addr)
        ins = decode(word)
        if slot.state == "trap":
            if ins.op is not Op.TRAP or ins.rd != Trap.MISS_RET or \
                    ins.imm != slot_id:
                raise ConsistencyError(
                    f"trap cont slot {slot_id} word is "
                    f"{disassemble_word(word)}")
        elif slot.state == "jump":
            if ins.op is not Op.J:
                raise ConsistencyError(
                    f"jump cont slot {slot_id} word is "
                    f"{disassemble_word(word)}")
        checked += 1
    for site_id, site in cc.jr_sites.items():
        if not site.live:
            raise ConsistencyError(f"dead jr site {site_id} in table")
        if site.block is not None and not site.block.alive:
            raise ConsistencyError(
                f"jr site {site_id} owned by a dead block")
        if site.cont_addr:
            # jalr: its trap word sits just before the continuation
            word = cc.mem.read_word(site.cont_addr - 4)
            ins = decode(word)
            if ins.op is not Op.TRAP or ins.rd != Trap.MISS_JR or \
                    ins.imm != site_id:
                raise ConsistencyError(
                    f"jalr site {site_id} word is "
                    f"{disassemble_word(word)}")
        checked += 1
    return checked


def _check_proc_cc(cc: ProcCacheController) -> int:
    checked = 0
    for rid, redir in cc.redirectors.items():
        entry = decode(cc.mem.read_word(redir.addr))
        landing = decode(cc.mem.read_word(redir.addr + 4))
        callee = cc.tcache.lookup(redir.callee_orig)
        if entry.op is Op.JAL:
            if callee is None or not callee.alive:
                raise ConsistencyError(
                    f"redirector {rid} entry jal targets absent "
                    f"callee {redir.callee_orig:#x}")
        elif not (entry.op is Op.TRAP and entry.rd == Trap.MISS_CALL
                  and entry.imm == rid):
            raise ConsistencyError(
                f"redirector {rid} entry word invalid")
        caller = cc.tcache.lookup(redir.caller_orig)
        if landing.op is Op.J:
            if caller is None or not caller.alive:
                raise ConsistencyError(
                    f"redirector {rid} landing targets absent caller")
        elif not (landing.op is Op.TRAP and landing.rd == Trap.RET_LAND
                  and landing.imm == rid):
            raise ConsistencyError(
                f"redirector {rid} landing word invalid")
        checked += 1
    return checked


def dump_tcache(cc: BaseCacheController) -> str:
    """Human-readable listing of the translation cache contents."""
    lines = []
    tcache = cc.tcache
    blocks = sorted(list(tcache.order) + list(tcache.pinned_blocks),
                    key=lambda b: b.addr)
    lines.append(f"tcache: {len(tcache.order)} blocks "
                 f"({tcache.used_bytes}/{tcache.geom.size} bytes), "
                 f"{len(tcache.pinned_blocks)} pinned")
    for block in blocks:
        tag = " [pinned]" if block.pinned else ""
        name = f" ({block.name})" if block.name else ""
        lines.append(f"\nblock @{block.addr:#x} <- orig "
                     f"{block.orig:#x}{name}{tag}, {block.size}B, "
                     f"{len(block.incoming)} in / "
                     f"{len(block.outgoing)} out")
        for pc in range(block.addr, block.end, 4):
            word = cc.mem.read_word(pc)
            try:
                text = disassemble_word(word, pc)
            except Exception:
                text = f".word {word:#010x}"
            lines.append(f"  {pc:#010x}: {text}")
    return "\n".join(lines)


def dump_superblock(cpu, pc: int) -> str:
    """Human-readable report on the superblock(s) covering *pc*: span,
    tier (jit / closure / single), execution count where tracked, the
    guest disassembly and — for compiled tiers — the generated Python
    source actually dispatched (``repro debug --dump-superblock``)."""
    infos = cpu.superblock_info(pc)
    if not infos:
        return (f"no live superblock covers pc {pc:#x} "
                f"(not yet dispatched, invalidated, or not executable)")
    lines = []
    for info in infos:
        lines.append(f"superblock @{info['start']:#x}..{info['end']:#x} "
                     f"tier={info['tier']} "
                     f"instructions={info['instructions']}"
                     + (f" hits={info['hits']}"
                        if info['hits'] is not None else ""))
        words = info.get("words")
        if words:
            lines.append("  guest code:")
            for i, word in enumerate(words):
                addr = info["start"] + 4 * i
                try:
                    text = disassemble_word(word, addr)
                except Exception:
                    text = f".word {word:#010x}"
                lines.append(f"    {addr:#010x}: {text}")
        if info.get("source"):
            lines.append("  generated source:")
            lines.extend("    " + ln
                         for ln in info["source"].rstrip().splitlines())
        lines.append("")
    return "\n".join(lines).rstrip()


def chunk_graph_dot(cc: BaseCacheController) -> str:
    """Graphviz DOT of resident chunks and their patched edges."""
    lines = ["digraph tcache {", '  node [shape=box, fontsize=10];']
    blocks = list(cc.tcache.order) + list(cc.tcache.pinned_blocks)
    for block in blocks:
        label = block.name or f"{block.orig:#x}"
        style = ', style=filled, fillcolor="#ffe0a0"' if block.pinned \
            else ""
        lines.append(f'  b{block.addr} [label="{label}\\n'
                     f'{block.size}B"{style}];')
    for block in blocks:
        for link in block.outgoing:
            lines.append(f"  b{block.addr} -> b{link.dst.addr} "
                         f'[label="{link.kind.value}"];')
        for link in block.incoming:
            if link.src is None:
                lines.append(f'  ext{link.site_addr} [label="'
                             f'{link.kind.value}", shape=ellipse];')
                lines.append(f"  ext{link.site_addr} -> b{block.addr};")
    lines.append("}")
    return "\n".join(lines)
