"""SoftCache runtime statistics.

Everything the evaluation section needs: translation counts (the
numerator of the paper's software miss rate), trap breakdowns,
eviction/flush counts with cycle timestamps (Figure 8's time series),
space accounting, and rewriting overhead counts (the "two new
instructions per translated basic block" measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SoftCacheStats:
    """Counters maintained by the cache controller."""

    # -- misses / translations ------------------------------------------
    #: Chunks installed into the tcache ("basic blocks translated"),
    #: demand and prefetch alike (each one is an installed chunk).
    translations: int = 0
    #: ensure_translated calls that found the chunk resident.
    map_hits: int = 0
    #: Chunks installed speculatively from batched replies.
    prefetch_installs: int = 0
    #: First demand hit on a block that was installed by prefetch
    #: (the prefetch paid off: a miss exchange was avoided).
    prefetch_hits: int = 0
    #: Prefetched chunks dropped without installing (no free tcache
    #: space — prefetch never evicts resident code — or stub pressure).
    prefetch_drops: int = 0
    #: Payload bytes of dropped prefetched chunks.
    prefetch_dropped_bytes: int = 0
    #: Bytes of prefetched blocks evicted without ever being entered
    #: (the wasted-prefetch traffic measure).
    wasted_prefetch_bytes: int = 0
    #: Miss traps by cause.
    branch_miss_traps: int = 0
    ret_miss_traps: int = 0
    call_miss_traps: int = 0      # ARM variant redirector entries
    landing_miss_traps: int = 0   # ARM variant return landings
    #: Computed-jump executions (every one pays the hash lookup).
    jr_lookups: int = 0

    # -- invalidation -----------------------------------------------------
    evictions: int = 0
    flushes: int = 0
    blocks_flushed: int = 0
    #: Cycle timestamp of each eviction event (Figure 8).
    eviction_timestamps: list[int] = field(default_factory=list)
    #: Cycle timestamp of each translation (miss time series).
    translation_timestamps: list[int] = field(default_factory=list)
    #: Return addresses repointed during stack walks.
    stack_slots_fixed: int = 0
    #: Explicit invalidations requested by the guest (self-mod code).
    guest_invalidations: int = 0

    # -- rewriting --------------------------------------------------------
    words_installed: int = 0
    #: Rewriting-added instructions actually installed.
    extra_words_installed: int = 0
    patches: int = 0
    stubs_created: int = 0
    stubs_peak_bytes: int = 0

    # -- per-phase miss accounting ----------------------------------------
    # Simulated cycles and host (wall-clock) seconds spent in each
    # phase of miss service: *serve* (MC chunking/lookup), *link*
    # (exchange transfer time converted to client cycles), *install*
    # (CC-side copy into the tcache) and *patch* (backpatching words).
    miss_serve_cycles: int = 0
    miss_link_cycles: int = 0
    miss_install_cycles: int = 0
    miss_patch_cycles: int = 0
    miss_serve_host_s: float = 0.0
    miss_install_host_s: float = 0.0
    miss_patch_host_s: float = 0.0

    # -- ops plane ---------------------------------------------------------
    #: Admin commands (flush/set/resize/publish) applied at miss
    #: boundaries.
    admin_commands: int = 0

    # -- live code update --------------------------------------------------
    #: Update barriers crossed (one per epoch change observed).
    update_barriers: int = 0
    #: Resident blocks invalidated by barriers (their original text
    #: changed between the epochs).
    update_invalidated_blocks: int = 0
    #: Surviving blocks re-stamped to the new epoch — untouched hot
    #: code that kept running (the laziness the barrier preserves).
    update_restamped_blocks: int = 0
    #: Prefetched-but-never-entered blocks dropped by barriers.
    update_prefetch_dropped: int = 0
    #: Client text-mirror words rewritten by barriers.
    update_text_patched_words: int = 0

    # -- replacement policy ------------------------------------------------
    #: Prefetch candidates rejected by the policy at batch-assembly
    #: time (the bytes were never shipped — compare prefetch_drops,
    #: which are shipped-then-dropped).
    policy_prefetch_rejects: int = 0
    #: Addresses promoted to prefetch-eligible (nhit crossing N).
    policy_promotions: int = 0
    #: Whole-cache flushes chosen by the policy over piecemeal
    #: eviction (trrip preemptive flush).
    policy_preemptive_flushes: int = 0

    # -- degraded resident mode (fault injection) -------------------------
    #: LinkDown traps raised by the miss path (retry budget exhausted).
    link_down_traps: int = 0
    #: Times the CC entered degraded resident mode.
    degraded_entries: int = 0
    #: Client cycles stalled waiting out reconnect epochs.
    degraded_stall_cycles: int = 0
    #: Pending misses successfully replayed after a reconnect.
    pending_miss_replays: int = 0
    #: LinkDown traps per demanded chunk (which code the outage hit).
    link_down_by_chunk: dict[int, int] = field(default_factory=dict)

    @property
    def miss_service_cycles(self) -> int:
        """Total simulated cycles spent servicing misses (all phases)."""
        return (self.miss_serve_cycles + self.miss_link_cycles +
                self.miss_install_cycles + self.miss_patch_cycles)

    @property
    def demand_translations(self) -> int:
        """Chunks installed because a miss demanded them."""
        return self.translations - self.prefetch_installs

    @property
    def miss_traps(self) -> int:
        """All trap events that can trigger translation."""
        return (self.branch_miss_traps + self.ret_miss_traps +
                self.call_miss_traps + self.landing_miss_traps)

    def miss_rate(self, instructions: int) -> float:
        """The paper's software miss rate: blocks translated divided
        by instructions executed (Figure 7 caption)."""
        return self.translations / instructions if instructions else 0.0

    def extra_instructions_per_translation(self) -> float:
        """Mean rewriting-added instructions per installed chunk."""
        if not self.translations:
            return 0.0
        return self.extra_words_installed / self.translations

    def publish(self, registry, prefix: str = "cc") -> None:
        """Mirror these counters into a metrics registry
        (:class:`repro.obs.MetricsRegistry`): int fields become
        counters, floats gauges, the timestamp lists length gauges,
        plus the derived miss-rate ingredients as counters."""
        from ..obs.metrics import publish_dataclass
        publish_dataclass(registry, prefix, self)
        registry.counter(f"{prefix}.miss_traps").inc(
            self.miss_traps - registry.counter(
                f"{prefix}.miss_traps").value)
        registry.counter(f"{prefix}.miss_service_cycles").inc(
            self.miss_service_cycles - registry.counter(
                f"{prefix}.miss_service_cycles").value)
