"""The translation cache (tcache): client-local storage for rewritten
code, plus the tcache map.

Mirrors Figure 4 of the paper: the tcache itself (a byte area in the
client's local RAM holding rewritten instructions, managed as a
circular FIFO of variable-size blocks so the cache is **fully
associative** — any chunk can live anywhere), the *tcache map* (hash
table from original addresses to tcache indices; here a dict with
accounted size), and a small stub area holding one-word TRAP stubs for
unresolved exits.

The allocator is deliberately simple: blocks are placed at a moving
tail; when space runs out the oldest blocks (at the head) are evicted
— or, under the ``flush`` policy, everything is dropped at once, the
strategy Dynamo/Shade-style systems use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .records import TBlock


class TCacheFull(Exception):
    """A single chunk is larger than the entire tcache."""


@dataclass(frozen=True)
class TCacheGeometry:
    """Sizing of the client-local SoftCache areas."""

    base: int
    size: int              # tcache proper (code blocks)
    stub_capacity: int     # bytes of stub area (4 bytes per stub)
    redirector_capacity: int = 0  # ARM variant: permanent redirectors
    #: Area for pinned chunks (§4: "pin or fix pages in memory and
    #: prevent their eviction without wasting space").
    pinned_capacity: int = 0

    @property
    def stub_base(self) -> int:
        return self.base + self.size

    @property
    def redirector_base(self) -> int:
        return self.stub_base + self.stub_capacity

    @property
    def pinned_base(self) -> int:
        return self.redirector_base + self.redirector_capacity

    @property
    def total(self) -> int:
        return (self.size + self.stub_capacity
                + self.redirector_capacity + self.pinned_capacity)


class TCache:
    """Allocator + residency map for the translation cache."""

    def __init__(self, geometry: TCacheGeometry):
        self.geom = geometry
        #: Effective block-area capacity in bytes.  Boot-time geometry
        #: is the hardware ceiling (the stub/redirector/pinned bases
        #: derived from it are baked into patched words and stack
        #: slots, so they can never move); :meth:`resize` shrinks or
        #: re-grows the usable block area within it at run time.
        self.size = geometry.size
        #: original address -> resident TBlock (the tcache map).
        self.map: dict[int, TBlock] = {}
        #: residency order, oldest first (eviction order).
        self.order: deque[TBlock] = deque()
        self._head = geometry.base            # oldest block's address
        self._tail = geometry.base            # next allocation address
        #: True when the allocation point has wrapped below the head:
        #: blocks live in [head, gap) + [base, tail), free is [tail,
        #: head).  Tracked explicitly because tail == head is otherwise
        #: ambiguous between "empty" and "full".
        self._wrapped = False
        self._wrap_gap_start: int | None = None  # wasted tail bytes
        self._stub_free: list[int] = list(
            range(geometry.stub_base,
                  geometry.stub_base + geometry.stub_capacity, 4))
        self._next_redirector = geometry.redirector_base
        #: Pinned blocks: resident forever, outside the FIFO.
        self.pinned_blocks: list[TBlock] = []
        self._next_pinned = geometry.pinned_base
        self.map_bytes_peak = 0

    # -- introspection -----------------------------------------------------

    @property
    def resident_blocks(self) -> int:
        return len(self.order)

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self.order)

    @property
    def map_bytes(self) -> int:
        """Modeled size of the tcache map hash table (8 B per entry)."""
        return 8 * len(self.map)

    def lookup(self, orig: int) -> TBlock | None:
        """tcache-map lookup: original address -> resident block."""
        return self.map.get(orig)

    def block_containing(self, tc_addr: int) -> TBlock | None:
        """Reverse lookup: which resident block holds *tc_addr*?"""
        for block in self.order:
            if block.contains(tc_addr):
                return block
        for block in self.pinned_blocks:
            if block.contains(tc_addr):
                return block
        return None

    def in_tcache_range(self, addr: int) -> bool:
        """Is *addr* anywhere in the SoftCache-managed local areas?"""
        return (self.geom.base <= addr <
                self.geom.base + self.geom.total)

    # -- block allocation ---------------------------------------------------

    def needs_eviction(self, nbytes: int) -> bool:
        """Would allocating *nbytes* require evicting or flushing?"""
        if nbytes > self.size:
            raise TCacheFull(
                f"chunk of {nbytes} bytes exceeds tcache size "
                f"{self.size}")
        end = self.geom.base + self.size
        if not self.order:
            return False
        if not self._wrapped:
            # free space: [tail, end) plus [base, head) after a wrap
            if self._tail + nbytes <= end:
                return False
            return self.geom.base + nbytes > self._head
        return self._tail + nbytes > self._head

    def oldest(self) -> TBlock:
        return self.order[0]

    def place(self, nbytes: int) -> int:
        """Allocate *nbytes*; caller must have evicted enough first.

        Raises :class:`TCacheFull` if space still does not suffice
        (allocator invariant violation).
        """
        end = self.geom.base + self.size
        if not self.order:
            self._head = self._tail = self.geom.base
            self._wrapped = False
            self._wrap_gap_start = None
            if self._tail + nbytes > end:
                raise TCacheFull("chunk larger than tcache")
        elif not self._wrapped:
            if self._tail + nbytes > end:
                # wrap: waste the tail gap
                self._wrap_gap_start = self._tail
                self._tail = self.geom.base
                self._wrapped = True
                if self._tail + nbytes > self._head:
                    raise TCacheFull("allocation after wrap still "
                                     "does not fit")
        else:
            if self._tail + nbytes > self._head:
                raise TCacheFull("allocation overruns head")
        addr = self._tail
        self._tail += nbytes
        return addr

    def commit(self, block: TBlock) -> None:
        """Register a placed block as resident."""
        self.order.append(block)
        self.map[block.orig] = block
        self.map_bytes_peak = max(self.map_bytes_peak, self.map_bytes)

    def assert_invariants(self) -> None:
        """Check allocator invariants (enabled by ``debug_poison``).

        Verifies that resident blocks are pairwise disjoint and inside
        the block area — the failure mode of any allocator bug is
        silent code corruption, so tests run with this on.
        """
        spans = sorted((b.addr, b.end) for b in self.order)
        prev_end = self.geom.base
        limit = self.geom.base + self.size
        for start, end in spans:
            if start < prev_end:
                raise AssertionError(
                    f"tcache blocks overlap at {start:#x} (prev end "
                    f"{prev_end:#x})")
            if end > limit:
                raise AssertionError(
                    f"block [{start:#x},{end:#x}) beyond block area")
            prev_end = end

    def resize(self, new_size: int) -> None:
        """Change the effective block-area capacity to *new_size*.

        The block area must be empty (flush first): resident blocks
        are addressed by patched words everywhere, so the allocator
        cannot relocate them.  The boot geometry is the ceiling —
        local RAM is physically provisioned once; growing beyond it
        is a hardware change, not an admin command.
        """
        if not 0 < new_size <= self.geom.size:
            raise ValueError(
                f"tcache size must be in (0, {self.geom.size}] bytes "
                f"(boot geometry is the hardware ceiling); "
                f"got {new_size}")
        if self.order:
            raise ValueError(
                "resize requires an empty block area (flush first)")
        self.size = new_size
        self._head = self._tail = self.geom.base
        self._wrapped = False
        self._wrap_gap_start = None

    def retire_oldest(self) -> TBlock:
        """Remove the oldest block from residency (caller unlinks)."""
        block = self.order.popleft()
        del self.map[block.orig]
        block.alive = False
        if self.order:
            new_head = self.order[0].addr
            if new_head < block.addr:
                # eviction crossed the wrap point; tail gap reclaimed
                self._wrap_gap_start = None
                self._wrapped = False
            self._head = new_head
        else:
            self._head = self._tail = self.geom.base
            self._wrap_gap_start = None
            self._wrapped = False
        return block

    def retire(self, block: TBlock) -> TBlock:
        """Remove one *specific* resident block (update-barrier
        invalidation; caller unlinks).

        The oldest block retires exactly like :meth:`retire_oldest`;
        a mid-FIFO block leaves a hole that is reclaimed when the head
        sweeps past it — conservative but safe, since the free-space
        accounting never counts holes as allocatable.
        """
        if self.order and self.order[0] is block:
            return self.retire_oldest()
        try:
            self.order.remove(block)
        except ValueError:
            raise KeyError(f"block for {block.orig:#x} is not in the "
                           f"eviction order") from None
        if self.map.get(block.orig) is block:
            del self.map[block.orig]
        block.alive = False
        if not self.order:
            self._head = self._tail = self.geom.base
            self._wrap_gap_start = None
            self._wrapped = False
        return block

    def retire_all(self) -> list[TBlock]:
        """Flush: drop every resident block (caller fixes pointers)."""
        blocks = list(self.order)
        for block in blocks:
            block.alive = False
        self.order.clear()
        self.map.clear()
        for pinned in self.pinned_blocks:  # pinned survive flushes
            self.map[pinned.orig] = pinned
        self._head = self._tail = self.geom.base
        self._wrap_gap_start = None
        self._wrapped = False
        return blocks

    # -- stub allocation -----------------------------------------------------

    def alloc_stub(self) -> int | None:
        """Allocate one 4-byte stub slot; None when exhausted."""
        if not self._stub_free:
            return None
        return self._stub_free.pop()

    def free_stub(self, addr: int) -> None:
        self._stub_free.append(addr)

    def reset_stubs(self) -> None:
        """Return every stub slot to the freelist (flush)."""
        self._stub_free = list(
            range(self.geom.stub_base,
                  self.geom.stub_base + self.geom.stub_capacity, 4))

    @property
    def stub_bytes_in_use(self) -> int:
        return (self.geom.stub_capacity - 4 * len(self._stub_free))

    @property
    def free_stub_slots(self) -> int:
        """Stub words still allocatable (prefetch admission check)."""
        return len(self._stub_free)

    # -- pinned area (§4 novel capability) ---------------------------------------

    def place_pinned(self, nbytes: int) -> int:
        """Allocate permanent space in the pinned area."""
        addr = self._next_pinned
        limit = self.geom.pinned_base + self.geom.pinned_capacity
        if addr + nbytes > limit:
            raise TCacheFull(
                f"pinned area full ({nbytes} bytes requested, "
                f"{limit - addr} free); raise pinned_capacity")
        self._next_pinned = addr + nbytes
        return addr

    def commit_pinned(self, block: TBlock) -> None:
        """Register a permanently resident block."""
        block.pinned = True
        self.pinned_blocks.append(block)
        self.map[block.orig] = block
        self.map_bytes_peak = max(self.map_bytes_peak, self.map_bytes)

    @property
    def pinned_bytes_in_use(self) -> int:
        return self._next_pinned - self.geom.pinned_base

    # -- redirectors (ARM variant) ---------------------------------------------

    def alloc_redirector(self) -> int | None:
        """Allocate a permanent two-word redirector; None if full."""
        addr = self._next_redirector
        limit = self.geom.redirector_base + self.geom.redirector_capacity
        if addr + 8 > limit:
            return None
        self._next_redirector = addr + 8
        return addr

    @property
    def redirector_bytes_in_use(self) -> int:
        return self._next_redirector - self.geom.redirector_base

    @property
    def free_redirector_slots(self) -> int:
        """Two-word redirectors still allocatable."""
        limit = self.geom.redirector_base + self.geom.redirector_capacity
        return (limit - self._next_redirector) // 8
