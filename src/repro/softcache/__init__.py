"""repro.softcache — the paper's contribution: an all-software
instruction cache built on dynamic binary rewriting.

Public surface:

* :class:`SoftCacheSystem` / :class:`SoftCacheConfig` — build and run a
  program under the software cache (``granularity``: ``block`` for the
  SPARC prototype, ``ebb`` for the optimized trace variant, ``proc``
  for the ARM prototype with redirectors).
* :class:`MemoryController` — the server side (chunking + rewriting).
* :class:`BlockCacheController` / :class:`ProcCacheController` — the
  client side (tcache, miss handling, backpatching, invalidation).
"""

from .cc import (
    BaseCacheController,
    BlockCacheController,
    ProcCacheController,
    SoftCacheError,
)
from .debug import (
    ConsistencyError,
    check_consistency,
    chunk_graph_dot,
    dump_tcache,
)
from .chunks import (
    BasicBlockChunker,
    Chunk,
    ChunkError,
    EBBChunker,
    ExitDesc,
    ExitKind,
    ProcedureChunker,
)
from .mc import MCStats, MemoryController
from .records import ContSlot, JRSite, Link, Redirector, SiteKind, Stub, TBlock
from .stats import SoftCacheStats
from .system import RunReport, SoftCacheConfig, SoftCacheSystem, run_softcache
from .tcache import TCache, TCacheFull, TCacheGeometry

__all__ = [
    "BaseCacheController", "BasicBlockChunker", "BlockCacheController",
    "Chunk", "ChunkError", "ConsistencyError", "ContSlot", "EBBChunker",
    "ExitDesc", "ExitKind", "JRSite", "Link", "MCStats",
    "MemoryController", "ProcCacheController", "ProcedureChunker",
    "Redirector", "RunReport", "SiteKind", "SoftCacheConfig",
    "SoftCacheError", "SoftCacheStats", "SoftCacheSystem", "Stub",
    "TBlock", "TCache", "TCacheFull", "TCacheGeometry",
    "check_consistency", "chunk_graph_dot", "dump_tcache",
    "run_softcache",
]
