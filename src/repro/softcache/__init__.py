"""repro.softcache — the paper's contribution: an all-software
instruction cache built on dynamic binary rewriting.

Public surface:

* :class:`SoftCacheSystem` / :class:`SoftCacheConfig` — build and run a
  program under the software cache (``granularity``: ``block`` for the
  SPARC prototype, ``ebb`` for the optimized trace variant, ``proc``
  for the ARM prototype with redirectors).
* :class:`MemoryController` — the server side (chunking + rewriting).
* :class:`BlockCacheController` / :class:`ProcCacheController` — the
  client side (tcache, miss handling, backpatching, invalidation).
"""

from .cc import (
    BaseCacheController,
    BlockCacheController,
    ProcCacheController,
    SoftCacheError,
)
from .debug import (
    ConsistencyError,
    check_consistency,
    chunk_graph_dot,
    dump_tcache,
)
from .chunks import (
    BasicBlockChunker,
    Chunk,
    ChunkError,
    EBBChunker,
    ExitDesc,
    ExitKind,
    ProcedureChunker,
)
from .mc import MCStats, MemoryController
from .policy import (
    EVICT,
    FLUSH,
    POLICIES,
    FifoPolicy,
    FlushPolicy,
    NhitPolicy,
    ReplacementPolicy,
    SeqCutoffPolicy,
    TrripPolicy,
    make_policy,
    policy_names,
    validate_policy_name,
)
from .records import ContSlot, JRSite, Link, Redirector, SiteKind, Stub, TBlock
from .stats import SoftCacheStats
from .system import RunReport, SoftCacheConfig, SoftCacheSystem, run_softcache
from .tcache import TCache, TCacheFull, TCacheGeometry

__all__ = [
    "BaseCacheController", "BasicBlockChunker", "BlockCacheController",
    "Chunk", "ChunkError", "ConsistencyError", "ContSlot",
    "EBBChunker", "EVICT", "ExitDesc", "ExitKind", "FLUSH",
    "FifoPolicy", "FlushPolicy", "JRSite",
    "Link", "MCStats", "MemoryController", "NhitPolicy", "POLICIES",
    "ProcCacheController", "ProcedureChunker", "Redirector",
    "ReplacementPolicy", "RunReport", "SeqCutoffPolicy", "SiteKind",
    "SoftCacheConfig", "SoftCacheError", "SoftCacheStats",
    "SoftCacheSystem", "Stub", "TBlock", "TCache", "TCacheFull",
    "TCacheGeometry", "TrripPolicy", "check_consistency",
    "chunk_graph_dot", "dump_tcache", "make_policy", "policy_names",
    "run_softcache", "validate_policy_name",
]
