"""Chunk production and binary rewriting (the MC's half of the work).

The memory controller breaks the program into chunks and rewrites each
chunk's control transfers at miss time.  Two chunkers match the two
prototypes:

* :class:`BasicBlockChunker` — the SPARC prototype: chunks are basic
  blocks; conditional branches grow an explicit fall-through jump and
  calls grow a return-continuation slot (the paper's "two new
  instructions per translated basic block"); computed jumps become
  hash-lookup traps.
* :class:`ProcedureChunker` — the ARM prototype: chunks are whole
  procedures, call sites are routed through permanent *redirector*
  stubs (so returns never point into evictable memory and no stack
  walk is needed at invalidation time), and indirect jumps are
  unsupported.

A produced :class:`Chunk` is position independent: exit words are
encoded with placeholder targets and described by :class:`ExitDesc`
records; the CC finalizes them against the current cache state when it
installs the chunk ("rewritten to point to a cache miss handler ...
and eventually, if used, again rewritten to point to other blocks").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..asm.image import Image, ProcSpan
from ..cfg import Term, scan_block
from ..isa import Insn, Op, Trap, decode, encode, jump_target

#: Placeholder TRAP word; the CC fills in the real stub/site id.
_TRAP_PLACEHOLDER = {
    Trap.MISS_BRANCH: encode(Insn(Op.TRAP, rd=Trap.MISS_BRANCH, imm=0)),
    Trap.MISS_JR: encode(Insn(Op.TRAP, rd=Trap.MISS_JR, imm=0)),
    Trap.MISS_RET: encode(Insn(Op.TRAP, rd=Trap.MISS_RET, imm=0)),
}


class ExitKind(enum.Enum):
    """How one rewritten word in a chunk leaves the chunk."""

    TAKEN = "taken"      # conditional branch, B-format patch
    JUMP = "jump"        # unconditional J, J-format patch
    CALL = "call"        # JAL, J-format patch
    CONT = "cont"        # return-continuation TRAP slot
    CONT_INLINE = "cont_inline"  # EBB: continuation code placed inline
    JR = "jr"            # computed jump TRAP (hash-table fallback)
    JALR = "jalr"        # indirect call TRAP + continuation slot
    INTERNAL = "internal"  # proc chunker: intra-chunk absolute J fixup
    CALLSITE = "callsite"  # proc chunker: JAL routed via redirector


@dataclass(frozen=True, slots=True)
class ExitDesc:
    """One exit record: chunk word index + original target/operands."""

    kind: ExitKind
    index: int                 # word index within the chunk body
    target: int | None = None  # original byte address (None: computed)
    rs1: int = 0               # source register of jr/jalr
    rd: int = 0                # link register of jalr
    ret_offset: int = 0        # proc chunker: return point offset


@dataclass(frozen=True, slots=True)
class Chunk:
    """A rewritten, relocatable chunk ready for installation."""

    orig: int
    words: tuple[int, ...]
    exits: tuple[ExitDesc, ...]
    orig_size: int
    extra_words: int
    term: Term | None = None
    name: str = ""

    @property
    def size(self) -> int:
        """Bytes the chunk occupies in the tcache."""
        return 4 * len(self.words)

    @property
    def payload_bytes(self) -> int:
        """Bytes shipped over the link (body + 4 per exit record)."""
        return self.size + 4 * len(self.exits)

    @property
    def successors(self) -> tuple[int, ...]:
        """Original addresses control can transfer to next (static).

        The nodes this chunk points at in the MC's chunk-successor
        graph: taken-branch and jump targets, call targets and the
        return continuation.  Computed jumps contribute nothing (their
        targets live in registers) and intra-chunk fixups are not
        successors.  Order follows the exit order, de-duplicated.
        """
        seen: list[int] = []
        for ex in self.exits:
            if ex.kind is ExitKind.INTERNAL or ex.target is None:
                continue
            if ex.target != self.orig and ex.target not in seen:
                seen.append(ex.target)
        return tuple(seen)


class ChunkError(ValueError):
    """The program violates the chunker's programming-model contract."""


class BasicBlockChunker:
    """Chunk at basic-block granularity (SPARC prototype, §2.1)."""

    granularity = "block"

    def __init__(self, image: Image):
        self.image = image

    def chunk_at(self, addr: int) -> Chunk:
        """Scan and rewrite the basic block starting at *addr*."""
        image = self.image
        if not image.in_text(addr):
            raise ChunkError(f"chunk target {addr:#x} outside text")
        block = scan_block(image.word_at, addr, image.text_end)
        words = list(block.words[:-1])  # body is position independent
        exits: list[ExitDesc] = []
        extra = 0
        term_word = block.words[-1]
        term = block.term
        if term is Term.BRANCH:
            exits.append(ExitDesc(ExitKind.TAKEN, len(words),
                                  block.taken))
            words.append(term_word & 0xFFFF0000)  # zeroed displacement
            exits.append(ExitDesc(ExitKind.JUMP, len(words),
                                  block.fallthrough))
            words.append(encode(Insn(Op.J, imm=0)))
            extra += 1
        elif term is Term.JUMP:
            exits.append(ExitDesc(ExitKind.JUMP, len(words), block.taken))
            words.append(term_word & 0xFC000000)
        elif term is Term.CALL:
            exits.append(ExitDesc(ExitKind.CALL, len(words), block.taken))
            words.append(term_word & 0xFC000000)
            exits.append(ExitDesc(ExitKind.CONT, len(words),
                                  block.fallthrough))
            words.append(_TRAP_PLACEHOLDER[Trap.MISS_RET])
            extra += 1
        elif term is Term.ICALL:
            ins = block.insns[-1]
            exits.append(ExitDesc(ExitKind.JALR, len(words), None,
                                  rs1=ins.rs1, rd=ins.rd))
            words.append(_TRAP_PLACEHOLDER[Trap.MISS_JR])
            exits.append(ExitDesc(ExitKind.CONT, len(words),
                                  block.fallthrough))
            words.append(_TRAP_PLACEHOLDER[Trap.MISS_RET])
            extra += 1
        elif term is Term.CJUMP:
            ins = block.insns[-1]
            exits.append(ExitDesc(ExitKind.JR, len(words), None,
                                  rs1=ins.rs1))
            words.append(_TRAP_PLACEHOLDER[Trap.MISS_JR])
        elif term in (Term.RET, Term.HALT):
            words.append(term_word)  # position independent as-is
        else:  # pragma: no cover - Term is exhaustive
            raise AssertionError(term)
        return Chunk(orig=addr, words=tuple(words), exits=tuple(exits),
                     orig_size=block.size, extra_words=extra, term=term)


class EBBChunker:
    """Extended-basic-block (trace) chunker: the optimization ablation.

    The paper notes its two extra instructions per translated block
    "could be optimized away to provide a performance closer to that
    of the native binary".  This chunker does exactly that, Dynamo
    style: after a conditional branch, a call, or an indirect call,
    translation *continues inline* with the fall-through/continuation
    code instead of emitting a jump or a return-continuation trap.
    Fall-through jumps disappear and procedure returns land directly
    on real code (``ra`` points at the inline continuation), so
    steady-state overhead approaches zero at the price of potential
    tail duplication in the tcache.
    """

    granularity = "ebb"

    def __init__(self, image: Image, limit: int = 8,
                 max_words: int = 256):
        self.image = image
        self.limit = limit          # max basic blocks glued per chunk
        self.max_words = max_words  # hard cap on chunk size

    def chunk_at(self, addr: int) -> Chunk:
        image = self.image
        if not image.in_text(addr):
            raise ChunkError(f"chunk target {addr:#x} outside text")
        words: list[int] = []
        exits: list[ExitDesc] = []
        orig_size = 0
        extra = 0
        pc = addr
        for _ in range(self.limit):
            block = scan_block(image.word_at, pc, image.text_end)
            words.extend(block.words[:-1])
            orig_size += block.size
            term_word = block.words[-1]
            term = block.term
            if term is Term.BRANCH:
                exits.append(ExitDesc(ExitKind.TAKEN, len(words),
                                      block.taken))
                words.append(term_word & 0xFFFF0000)
                pc = block.fallthrough  # continue inline: no jump added
            elif term is Term.CALL:
                exits.append(ExitDesc(ExitKind.CALL, len(words),
                                      block.taken))
                words.append(term_word & 0xFC000000)
                exits.append(ExitDesc(ExitKind.CONT_INLINE, len(words),
                                      block.fallthrough))
                pc = block.fallthrough  # returns land right here
            elif term is Term.ICALL:
                ins = block.insns[-1]
                exits.append(ExitDesc(ExitKind.JALR, len(words), None,
                                      rs1=ins.rs1, rd=ins.rd))
                words.append(_TRAP_PLACEHOLDER[Trap.MISS_JR])
                exits.append(ExitDesc(ExitKind.CONT_INLINE, len(words),
                                      block.fallthrough))
                pc = block.fallthrough
            elif term is Term.JUMP:
                exits.append(ExitDesc(ExitKind.JUMP, len(words),
                                      block.taken))
                words.append(term_word & 0xFC000000)
                break
            elif term is Term.CJUMP:
                ins = block.insns[-1]
                exits.append(ExitDesc(ExitKind.JR, len(words), None,
                                      rs1=ins.rs1))
                words.append(_TRAP_PLACEHOLDER[Trap.MISS_JR])
                break
            else:  # RET / HALT
                words.append(term_word)
                break
            if len(words) >= self.max_words:
                # cap hit mid-trace: emit an explicit jump to continue
                exits.append(ExitDesc(ExitKind.JUMP, len(words), pc))
                words.append(encode(Insn(Op.J, imm=0)))
                extra += 1
                break
        else:
            # block-count limit hit: continue via explicit jump
            exits.append(ExitDesc(ExitKind.JUMP, len(words), pc))
            words.append(encode(Insn(Op.J, imm=0)))
            extra += 1
        return Chunk(orig=addr, words=tuple(words), exits=tuple(exits),
                     orig_size=orig_size, extra_words=extra, term=None)


class ProcedureChunker:
    """Chunk at procedure granularity (ARM prototype, §2.3).

    Limitations mirror the paper's: calls go through redirectors,
    indirect jumps (jr to non-return targets, jalr) are not supported,
    and control may not branch across procedure boundaries.
    """

    granularity = "proc"

    def __init__(self, image: Image):
        self.image = image

    def chunk_at(self, addr: int) -> Chunk:
        """Rewrite the whole procedure containing *addr*.

        *addr* must be a procedure entry: the redirector scheme gives
        the CC no way to enter a procedure in the middle.
        """
        image = self.image
        proc = image.proc_at(addr)
        if proc is None:
            raise ChunkError(f"no procedure covers {addr:#x}")
        if proc.addr != addr:
            raise ChunkError(
                f"{addr:#x} is not the entry of {proc.name} "
                f"({proc.addr:#x}); procedure chunks are entered at "
                f"their entry only")
        return self._rewrite_proc(proc)

    def _rewrite_proc(self, proc: ProcSpan) -> Chunk:
        image = self.image
        words: list[int] = []
        exits: list[ExitDesc] = []
        for off in range(0, proc.size, 4):
            pc = proc.addr + off
            word = image.word_at(pc)
            ins = decode(word)
            op = ins.op
            index = off >> 2
            if op is Op.JAL:
                callee = jump_target(word)
                exits.append(ExitDesc(
                    ExitKind.CALLSITE, index, callee,
                    ret_offset=off + 4))
                words.append(encode(Insn(Op.J, imm=0)))  # -> redirector
            elif op is Op.J:
                target = jump_target(word)
                if not proc.contains(target):
                    raise ChunkError(
                        f"{proc.name}: jump at {pc:#x} leaves the "
                        f"procedure (to {target:#x}); unsupported by "
                        f"the procedure chunker")
                exits.append(ExitDesc(ExitKind.INTERNAL, index,
                                      target - proc.addr))
                words.append(word & 0xFC000000)
            elif op in (Op.JR, Op.JALR):
                raise ChunkError(
                    f"{proc.name}: indirect jump at {pc:#x} — not "
                    f"supported by the ARM-style prototype (paper §2.3)")
            elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU,
                        Op.BGEU):
                target = pc + 4 + (ins.imm << 2)
                if not proc.contains(target):
                    raise ChunkError(
                        f"{proc.name}: branch at {pc:#x} leaves the "
                        f"procedure")
                words.append(word)  # pc-relative: relocates verbatim
            else:
                words.append(word)
        return Chunk(orig=proc.addr, words=tuple(words),
                     exits=tuple(exits), orig_size=proc.size,
                     extra_words=0, term=None, name=proc.name)
