"""Hardware tag-array space overhead (the paper's 11-18% estimate).

Figure 6's caption: "The cache size is the size of data only — tags
for 32-bit addresses would add an extra 11-18%."  These helpers make
that estimate precise for any geometry, and the benchmark sweeps the
figure's size range to confirm the quoted band.
"""

from __future__ import annotations

from dataclasses import dataclass


def tag_bits(cache_size: int, block_size: int, ways: int = 1,
             addr_bits: int = 32) -> int:
    """Tag width in bits for one cache block."""
    if cache_size % (block_size * ways):
        raise ValueError("inconsistent geometry")
    nsets = cache_size // (block_size * ways)
    offset_bits = block_size.bit_length() - 1
    index_bits = nsets.bit_length() - 1
    return addr_bits - offset_bits - index_bits


@dataclass(frozen=True)
class TagOverhead:
    """Space overhead of the tag array for one cache geometry."""

    cache_size: int
    block_size: int
    ways: int
    tag_bits: int
    metadata_bits: int  # valid (+ dirty for D-caches)

    @property
    def bits_per_block(self) -> int:
        return self.tag_bits + self.metadata_bits

    @property
    def overhead_fraction(self) -> float:
        """Tag+metadata bits as a fraction of data bits."""
        return self.bits_per_block / (self.block_size * 8)

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


def tag_overhead(cache_size: int, block_size: int = 16, ways: int = 1,
                 addr_bits: int = 32, valid_bit: bool = True,
                 dirty_bit: bool = False) -> TagOverhead:
    """Compute the tag-array overhead for a cache geometry."""
    meta = (1 if valid_bit else 0) + (1 if dirty_bit else 0)
    return TagOverhead(
        cache_size=cache_size, block_size=block_size, ways=ways,
        tag_bits=tag_bits(cache_size, block_size, ways, addr_bits),
        metadata_bits=meta)


def overhead_band(sizes: list[int], block_size: int = 16,
                  addr_bits: int = 32) -> tuple[float, float]:
    """(min%, max%) tag overhead across *sizes* — the 11-18% band."""
    percents = [tag_overhead(s, block_size, addr_bits=addr_bits)
                .overhead_percent for s in sizes]
    return min(percents), max(percents)
