"""Trace-driven direct-mapped cache simulation (the paper's baseline).

Figure 6 simulates "a direct-mapped L1 instruction cache with 16-byte
blocks" across sizes.  A direct-mapped cache's miss sequence per set
depends only on the order of tags mapping to that set, so the whole
simulation vectorizes: group accesses by set (stable sort) and count
tag *changes* within each group.  This evaluates a multi-million-entry
fetch trace in milliseconds, letting the benchmark sweep every cache
size of the figure from one native run.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheResult:
    """Outcome of simulating one cache configuration over one trace."""

    size_bytes: int
    block_size: int
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _as_numpy(trace) -> np.ndarray:
    if isinstance(trace, np.ndarray):
        return trace.astype(np.uint64, copy=False)
    if isinstance(trace, array):
        return np.frombuffer(trace, dtype=np.uint32).astype(np.uint64)
    return np.asarray(trace, dtype=np.uint64)


def simulate_direct_mapped(trace, size_bytes: int,
                           block_size: int = 16) -> CacheResult:
    """Simulate a direct-mapped cache of *size_bytes* over *trace*.

    *trace* is a sequence of byte addresses (``array('I')``, numpy
    array or list).  Cold misses count as misses, as in the paper.
    """
    if size_bytes % block_size:
        raise ValueError("cache size must be a multiple of the block size")
    nsets = size_bytes // block_size
    if nsets & (nsets - 1) or block_size & (block_size - 1):
        raise ValueError("sizes must be powers of two")
    addrs = _as_numpy(trace)
    n = len(addrs)
    if n == 0:
        return CacheResult(size_bytes, block_size, 0, 0)
    block_bits = block_size.bit_length() - 1
    blocks = addrs >> block_bits
    sets = blocks & (nsets - 1)
    tags = blocks >> (nsets.bit_length() - 1)
    order = np.argsort(sets, kind="stable")
    s_sets = sets[order]
    s_tags = tags[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(s_sets[1:], s_sets[:-1], out=boundary[1:])
    changed = np.empty(n, dtype=bool)
    changed[0] = True
    np.not_equal(s_tags[1:], s_tags[:-1], out=changed[1:])
    misses = int(np.count_nonzero(boundary | changed))
    return CacheResult(size_bytes, block_size, n, misses)


def sweep_direct_mapped(trace, sizes: list[int],
                        block_size: int = 16) -> list[CacheResult]:
    """Simulate every cache size in *sizes* over the same trace."""
    addrs = _as_numpy(trace)
    return [simulate_direct_mapped(addrs, size, block_size)
            for size in sizes]


def working_set_knee(results: list[CacheResult],
                     threshold: float = 0.01) -> int | None:
    """Smallest cache size whose miss rate drops below *threshold*.

    The paper reads the working set off the knee of the miss-rate
    curve; this is the quantitative version used in EXPERIMENTS.md.
    """
    for res in sorted(results, key=lambda r: r.size_bytes):
        if res.miss_rate < threshold:
            return res.size_bytes
    return None
