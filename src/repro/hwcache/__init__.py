"""repro.hwcache — trace-driven hardware cache baselines.

The comparison system of the paper's evaluation: a direct-mapped L1
I-cache with 16-byte blocks (:func:`simulate_direct_mapped`, Figure 6),
associative variants for ablations, and the tag-array space-overhead
calculator behind the "tags would add 11-18%" claim.
"""

from .assoc import simulate_fully_associative, simulate_set_associative
from .direct import (
    CacheResult,
    simulate_direct_mapped,
    sweep_direct_mapped,
    working_set_knee,
)
from .tags import TagOverhead, overhead_band, tag_bits, tag_overhead

__all__ = [
    "CacheResult", "TagOverhead", "overhead_band",
    "simulate_direct_mapped", "simulate_fully_associative",
    "simulate_set_associative", "sweep_direct_mapped", "tag_bits",
    "tag_overhead", "working_set_knee",
]
