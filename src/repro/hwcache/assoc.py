"""Set-associative cache simulation with LRU/FIFO replacement.

Used by the extension benchmarks to contrast the SoftCache's full
associativity against hardware associativity levels (the paper argues
fully associative hardware caches are impractical at small block
sizes; here we can measure what associativity would have bought).
"""

from __future__ import annotations

from .direct import CacheResult, _as_numpy, simulate_direct_mapped


def simulate_set_associative(trace, size_bytes: int, ways: int,
                             block_size: int = 16,
                             policy: str = "lru") -> CacheResult:
    """Simulate a *ways*-way set-associative cache over *trace*.

    ``ways == 1`` delegates to the vectorized direct-mapped simulator;
    ``ways >= nblocks`` is fully associative.  *policy* is ``lru`` or
    ``fifo``.
    """
    if size_bytes % (block_size * ways):
        raise ValueError("size must be a multiple of block_size * ways")
    if ways == 1:
        return simulate_direct_mapped(trace, size_bytes, block_size)
    if policy not in ("lru", "fifo"):
        raise ValueError(f"unknown policy {policy!r}")
    nsets = size_bytes // (block_size * ways)
    if nsets & (nsets - 1):
        raise ValueError("set count must be a power of two")
    addrs = _as_numpy(trace)
    block_bits = block_size.bit_length() - 1
    blocks = (addrs >> block_bits).tolist()
    set_mask = nsets - 1
    lru = policy == "lru"
    # Each set is a list ordered oldest-first; python lists beat
    # OrderedDict for the small `ways` counts used here.
    sets: list[list[int]] = [[] for _ in range(nsets)]
    misses = 0
    for block in blocks:
        entry = sets[block & set_mask]
        try:
            idx = entry.index(block)
        except ValueError:
            misses += 1
            if len(entry) >= ways:
                entry.pop(0)
            entry.append(block)
        else:
            if lru:
                entry.append(entry.pop(idx))
    return CacheResult(size_bytes, block_size, len(blocks), misses)


def simulate_fully_associative(trace, size_bytes: int,
                               block_size: int = 16,
                               policy: str = "lru") -> CacheResult:
    """Fully associative cache: one set, ``size/block`` ways."""
    ways = size_bytes // block_size
    addrs = _as_numpy(trace)
    block_bits = block_size.bit_length() - 1
    blocks = (addrs >> block_bits).tolist()
    lru = policy == "lru"
    resident: dict[int, None] = {}
    misses = 0
    for block in blocks:
        if block in resident:
            if lru:
                del resident[block]
                resident[block] = None
        else:
            misses += 1
            if len(resident) >= ways:
                resident.pop(next(iter(resident)))
            resident[block] = None
    return CacheResult(size_bytes, block_size, len(blocks), misses)
