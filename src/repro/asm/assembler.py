"""Two-pass line-oriented assembler for the repro RISC ISA.

Accepts the conventional dialect::

    .text
    .global main
    .proc   main
    main:
        addi  sp, sp, -8
        sw    ra, 4(sp)
        li    a0, 42
        jal   helper        ; forward references are fine
        lw    ra, 4(sp)
        addi  sp, sp, 8
        ret

    .data
    table:  .word 1, 2, helper   ; label in data -> W32 relocation

Comments start with ``;``, ``#`` or ``//``.  Pseudo-instructions
(``li``, ``la``, ``mv``, ``nop``, ``beqz`` …) expand deterministically
at parse time so offsets are known in a single pass; label references
become relocation records resolved by the linker.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..isa import (
    Fmt,
    Insn,
    MNEMONICS,
    Op,
    SPECS,
    Sys,
    Trap,
    encode,
    is_reg_name,
    reg_num,
)
from ..isa.registers import AT, RA, ZERO
from .objfile import ObjectFile, Reloc, Relocation


class AsmError(ValueError):
    """An assembly-source error, annotated with file/line."""

    def __init__(self, message: str, filename: str = "<asm>", line: int = 0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_SYM_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(r"^(.*)\(\s*([A-Za-z_][\w]*|r\d+)\s*\)$")
_SYMOFF_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$")

_BRANCH_SWAPS = {
    "bgt": Op.BLT, "ble": Op.BGE, "bgtu": Op.BLTU, "bleu": Op.BGEU,
}
_BRANCH_ZERO = {
    "beqz": Op.BEQ, "bnez": Op.BNE, "bltz": Op.BLT, "bgez": Op.BGE,
}

_STRING_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
                   '"': '"', "'": "'", "r": "\r"}


@dataclass
class _Ctx:
    """Mutable assembly state."""

    obj: ObjectFile
    filename: str
    section: str = ".text"
    line: int = 0
    equs: dict[str, int] = None  # type: ignore[assignment]
    pending_procs: set[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.equs = {}
        self.pending_procs = set()

    def err(self, msg: str) -> AsmError:
        return AsmError(msg, self.filename, self.line)


def assemble(source: str, name: str = "<asm>") -> ObjectFile:
    """Assemble *source* into an :class:`ObjectFile`.

    Raises :class:`AsmError` on any syntax or range problem.
    """
    obj = ObjectFile(name=name)
    ctx = _Ctx(obj=obj, filename=name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        ctx.line = lineno
        line = _strip_comment(raw).strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                label = match.group(1)
                try:
                    obj.define(label, ctx.section, _section_offset(ctx))
                except ValueError as exc:
                    raise AsmError(str(exc), name, lineno) from exc
                line = match.group(2).strip()
                continue
            _process_statement(ctx, line)
            break
    for sym in ctx.pending_procs:
        if sym not in obj.symbols:
            raise AsmError(f".proc for undefined symbol: {sym}", name, 0)
        obj.mark_proc(sym)
    try:
        obj.finalize()
    except ValueError as exc:
        raise AsmError(str(exc), name, 0) from exc
    return obj


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_str:
            out.append(ch)
            if ch == "\\" and i + 1 < len(line):
                out.append(line[i + 1])
                i += 2
                continue
            if ch == '"':
                in_str = False
        else:
            if ch == '"':
                in_str = True
                out.append(ch)
            elif ch in ";#" or line.startswith("//", i):
                break
            else:
                out.append(ch)
        i += 1
    return "".join(out)


def _section_offset(ctx: _Ctx) -> int:
    sec = ctx.obj.section(ctx.section)
    return sec.bss_size if ctx.section == ".bss" else len(sec.data)


def _process_statement(ctx: _Ctx, stmt: str) -> None:
    parts = stmt.split(None, 1)
    head = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    if head.startswith("."):
        _directive(ctx, head, rest)
    else:
        _instruction(ctx, head, rest)


# ---------------------------------------------------------------------------
# Directives
# ---------------------------------------------------------------------------

def _directive(ctx: _Ctx, name: str, rest: str) -> None:
    obj = ctx.obj
    if name in (".text", ".data", ".bss"):
        ctx.section = name
        obj.section(name)
        return
    if name == ".global" or name == ".globl":
        for sym in _split_operands(rest):
            obj.mark_global(sym)
        return
    if name == ".proc":
        # .proc usually precedes its label; apply marks after assembly.
        ctx.pending_procs.add(rest.strip())
        return
    if name == ".equ" or name == ".set":
        sym, _, val = rest.partition(",")
        ctx.equs[sym.strip()] = _parse_int(ctx, val.strip())
        return
    if ctx.section == ".bss":
        if name == ".space":
            sec = obj.section(".bss")
            sec.bss_size += _parse_int(ctx, rest.strip())
            return
        if name == ".align":
            sec = obj.section(".bss")
            n = _parse_int(ctx, rest.strip())
            sec.bss_size = -(-sec.bss_size // n) * n
            return
        raise ctx.err(f"directive {name} not allowed in .bss")
    sec = obj.section(ctx.section)
    if name == ".word":
        for operand in _split_operands(rest):
            _emit_data_word(ctx, operand)
        return
    if name == ".half":
        for operand in _split_operands(rest):
            val = _parse_int(ctx, operand) & 0xFFFF
            sec.data += val.to_bytes(2, "little")
        return
    if name == ".byte":
        for operand in _split_operands(rest):
            val = _parse_int(ctx, operand) & 0xFF
            sec.data.append(val)
        return
    if name in (".asciiz", ".string"):
        sec.data += _parse_string(ctx, rest.strip()).encode("latin-1") + b"\0"
        return
    if name == ".ascii":
        sec.data += _parse_string(ctx, rest.strip()).encode("latin-1")
        return
    if name == ".space":
        sec.data += bytes(_parse_int(ctx, rest.strip()))
        return
    if name == ".align":
        n = _parse_int(ctx, rest.strip())
        while len(sec.data) % n:
            sec.data.append(0)
        return
    raise ctx.err(f"unknown directive {name}")


def _emit_data_word(ctx: _Ctx, operand: str) -> None:
    sec = ctx.obj.section(ctx.section)
    operand = operand.strip()
    if _looks_symbolic(ctx, operand):
        sym, addend = _parse_symoff(ctx, operand)
        ctx.obj.relocations.append(
            Relocation(ctx.section, len(sec.data), Reloc.W32, sym, addend))
        sec.data += b"\0\0\0\0"
    else:
        val = _parse_int(ctx, operand) & 0xFFFFFFFF
        sec.data += val.to_bytes(4, "little")


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

def _instruction(ctx: _Ctx, mnem: str, rest: str) -> None:
    ops = _split_operands(rest)
    emitted = _expand(ctx, mnem, ops)
    sec = ctx.obj.section(ctx.section)
    if ctx.section == ".bss":
        raise ctx.err("instructions not allowed in .bss")
    for insn, reloc_kind, reloc_sym, reloc_add in emitted:
        if reloc_kind is not None:
            ctx.obj.relocations.append(Relocation(
                ctx.section, len(sec.data), reloc_kind, reloc_sym, reloc_add))
        try:
            word = encode(insn)
        except Exception as exc:
            raise ctx.err(str(exc)) from exc
        sec.data += word.to_bytes(4, "little")


_Emit = tuple[Insn, Reloc | None, str, int]


def _emit1(insn: Insn) -> list[_Emit]:
    return [(insn, None, "", 0)]


def _expand(ctx: _Ctx, mnem: str, ops: list[str]) -> list[_Emit]:
    """Expand one statement into encoded instructions + relocations."""
    # --- pseudo-instructions -------------------------------------------
    if mnem == "nop":
        return _emit1(Insn(Op.ADD, rd=ZERO, rs1=ZERO, rs2=ZERO))
    if mnem == "li":
        _arity(ctx, mnem, ops, 2)
        return _expand_li(ctx, _reg(ctx, ops[0]), _parse_int(ctx, ops[1]))
    if mnem == "la":
        _arity(ctx, mnem, ops, 2)
        rd = _reg(ctx, ops[0])
        sym, addend = _parse_symoff(ctx, ops[1])
        return [
            (Insn(Op.LUI, rd=rd, rs1=ZERO, imm=0), Reloc.HI16, sym, addend),
            (Insn(Op.ORI, rd=rd, rs1=rd, imm=0), Reloc.LO16, sym, addend),
        ]
    if mnem == "mv" or mnem == "move":
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.ADD, rd=_reg(ctx, ops[0]),
                           rs1=_reg(ctx, ops[1]), rs2=ZERO))
    if mnem == "neg":
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.SUB, rd=_reg(ctx, ops[0]), rs1=ZERO,
                           rs2=_reg(ctx, ops[1])))
    if mnem == "not":
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.NOR, rd=_reg(ctx, ops[0]),
                           rs1=_reg(ctx, ops[1]), rs2=ZERO))
    if mnem == "seqz":
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.SLTIU, rd=_reg(ctx, ops[0]),
                           rs1=_reg(ctx, ops[1]), imm=1))
    if mnem == "snez":
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.SLTU, rd=_reg(ctx, ops[0]), rs1=ZERO,
                           rs2=_reg(ctx, ops[1])))
    if mnem == "subi":
        _arity(ctx, mnem, ops, 3)
        return _emit1(Insn(Op.ADDI, rd=_reg(ctx, ops[0]),
                           rs1=_reg(ctx, ops[1]),
                           imm=-_parse_int(ctx, ops[2])))
    if mnem == "b":
        mnem, ops = "j", ops
    if mnem == "call":
        mnem = "jal"
    if mnem in _BRANCH_SWAPS:
        _arity(ctx, mnem, ops, 3)
        op = _BRANCH_SWAPS[mnem]
        return _branch(ctx, op, _reg(ctx, ops[1]), _reg(ctx, ops[0]), ops[2])
    if mnem in _BRANCH_ZERO:
        _arity(ctx, mnem, ops, 2)
        op = _BRANCH_ZERO[mnem]
        if mnem in ("beqz", "bnez", "bltz", "bgez"):
            return _branch(ctx, op, _reg(ctx, ops[0]), ZERO, ops[1])
    if mnem == "bgtz":
        _arity(ctx, mnem, ops, 2)
        return _branch(ctx, Op.BLT, ZERO, _reg(ctx, ops[0]), ops[1])
    if mnem == "blez":
        _arity(ctx, mnem, ops, 2)
        return _branch(ctx, Op.BGE, ZERO, _reg(ctx, ops[0]), ops[1])

    op = MNEMONICS.get(mnem)
    if op is None:
        raise ctx.err(f"unknown mnemonic '{mnem}'")
    fmt = SPECS[op].fmt

    if fmt is Fmt.R:
        if op is Op.RET:
            _arity(ctx, mnem, ops, 0)
            return _emit1(Insn(Op.RET, rs1=RA))
        if op is Op.JR:
            _arity(ctx, mnem, ops, 1)
            return _emit1(Insn(Op.JR, rs1=_reg(ctx, ops[0])))
        if op is Op.JALR:
            _arity(ctx, mnem, ops, 2)
            return _emit1(Insn(Op.JALR, rd=_reg(ctx, ops[0]),
                               rs1=_reg(ctx, ops[1])))
        _arity(ctx, mnem, ops, 3)
        return _emit1(Insn(op, rd=_reg(ctx, ops[0]), rs1=_reg(ctx, ops[1]),
                           rs2=_reg(ctx, ops[2])))

    if fmt is Fmt.I:
        if SPECS[op].reads_mem or SPECS[op].writes_mem:
            _arity(ctx, mnem, ops, 2)
            offset, base = _parse_mem(ctx, ops[1])
            return _emit1(Insn(op, rd=_reg(ctx, ops[0]), rs1=base,
                               imm=offset))
        if op is Op.LUI:
            _arity(ctx, mnem, ops, 2)
            return _emit1(Insn(op, rd=_reg(ctx, ops[0]), rs1=ZERO,
                               imm=_parse_int(ctx, ops[1]) & 0xFFFF))
        _arity(ctx, mnem, ops, 3)
        return _emit1(Insn(op, rd=_reg(ctx, ops[0]), rs1=_reg(ctx, ops[1]),
                           imm=_parse_int(ctx, ops[2])))

    if fmt is Fmt.B:
        _arity(ctx, mnem, ops, 3)
        return _branch(ctx, op, _reg(ctx, ops[0]), _reg(ctx, ops[1]), ops[2])

    if fmt is Fmt.J:
        _arity(ctx, mnem, ops, 1)
        target = ops[0]
        if _looks_symbolic(ctx, target):
            sym, addend = _parse_symoff(ctx, target)
            return [(Insn(op, imm=0), Reloc.J26, sym, addend)]
        return _emit1(Insn(op, imm=_parse_int(ctx, target) >> 2))

    # Fmt.T
    if op is Op.HALT:
        _arity(ctx, mnem, ops, 0)
        return _emit1(Insn(Op.HALT))
    if op is Op.SYSCALL:
        _arity(ctx, mnem, ops, 1)
        return _emit1(Insn(Op.SYSCALL, imm=_parse_service(ctx, ops[0])))
    if op is Op.BREAK:
        code = _parse_int(ctx, ops[0]) if ops else 0
        return _emit1(Insn(Op.BREAK, imm=code))
    if op is Op.TRAP:
        _arity(ctx, mnem, ops, 2)
        return _emit1(Insn(Op.TRAP, rd=_parse_trap(ctx, ops[0]),
                           imm=_parse_int(ctx, ops[1])))
    raise ctx.err(f"unhandled mnemonic '{mnem}'")  # pragma: no cover


def _expand_li(ctx: _Ctx, rd: int, value: int) -> list[_Emit]:
    value &= 0xFFFFFFFF
    signed = value - 0x100000000 if value & 0x80000000 else value
    if -32768 <= signed <= 32767:
        return _emit1(Insn(Op.ADDI, rd=rd, rs1=ZERO, imm=signed))
    if 0 <= value <= 0xFFFF:
        return _emit1(Insn(Op.ORI, rd=rd, rs1=ZERO, imm=value))
    lo = value & 0xFFFF
    hi = (value >> 16) & 0xFFFF
    out = [(Insn(Op.LUI, rd=rd, rs1=ZERO, imm=hi), None, "", 0)]
    if lo:
        out.append((Insn(Op.ORI, rd=rd, rs1=rd, imm=lo), None, "", 0))
    return out


def _branch(ctx: _Ctx, op: Op, rs1: int, rs2: int, target: str) -> list[_Emit]:
    if _looks_symbolic(ctx, target):
        sym, addend = _parse_symoff(ctx, target)
        return [(Insn(op, rs1=rs1, rs2=rs2, imm=0), Reloc.BR16, sym, addend)]
    return _emit1(Insn(op, rs1=rs1, rs2=rs2, imm=_parse_int(ctx, target)))


# ---------------------------------------------------------------------------
# Operand parsing
# ---------------------------------------------------------------------------

def _split_operands(rest: str) -> list[str]:
    if not rest.strip():
        return []
    out, depth, in_str, cur = [], 0, False, []
    for ch in rest:
        if in_str:
            cur.append(ch)
            if ch == '"':
                in_str = False
            continue
        if ch == '"':
            in_str = True
            cur.append(ch)
        elif ch == "(":
            depth += 1
            cur.append(ch)
        elif ch == ")":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _arity(ctx: _Ctx, mnem: str, ops: list[str], n: int) -> None:
    if len(ops) != n:
        raise ctx.err(f"{mnem} expects {n} operands, got {len(ops)}")


def _reg(ctx: _Ctx, text: str) -> int:
    try:
        return reg_num(text.strip())
    except KeyError:
        raise ctx.err(f"unknown register '{text.strip()}'") from None


def _parse_int(ctx: _Ctx, text: str) -> int:
    text = text.strip()
    if text in ctx.equs:
        return ctx.equs[text]
    if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
        body = text[1:-1]
        if body.startswith("\\") and len(body) == 2:
            body = _STRING_ESCAPES.get(body[1], body[1])
        if len(body) != 1:
            raise ctx.err(f"bad character literal {text}")
        return ord(body)
    try:
        return int(text, 0)
    except ValueError:
        raise ctx.err(f"bad integer '{text}'") from None


def _parse_mem(ctx: _Ctx, text: str) -> tuple[int, int]:
    match = _MEM_RE.match(text.strip())
    if not match:
        raise ctx.err(f"bad memory operand '{text}' (want off(base))")
    off_text = match.group(1).strip()
    offset = _parse_int(ctx, off_text) if off_text else 0
    return offset, _reg(ctx, match.group(2))


def _looks_symbolic(ctx: _Ctx, text: str) -> bool:
    text = text.strip()
    if text in ctx.equs:
        return False
    match = _SYMOFF_RE.match(text)
    if not match:
        return False
    head = match.group(1)
    if is_reg_name(head):
        return False
    return not head[0].isdigit()


def _parse_symoff(ctx: _Ctx, text: str) -> tuple[str, int]:
    match = _SYMOFF_RE.match(text.strip())
    if not match:
        raise ctx.err(f"bad symbol reference '{text}'")
    addend = 0
    if match.group(2):
        addend = int(match.group(2).replace(" ", ""))
    return match.group(1), addend


def _parse_service(ctx: _Ctx, text: str) -> int:
    text = text.strip()
    try:
        return Sys[text.upper()].value
    except KeyError:
        return _parse_int(ctx, text)


def _parse_trap(ctx: _Ctx, text: str) -> int:
    text = text.strip()
    try:
        return Trap[text.upper()].value
    except KeyError:
        return _parse_int(ctx, text)


def _parse_string(ctx: _Ctx, text: str) -> str:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise ctx.err(f"bad string literal {text!r}")
    body = text[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_STRING_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
