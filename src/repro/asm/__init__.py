"""repro.asm — assembler, object files, linker and executable images.

The toolchain the reproduction uses to build workload binaries:
:func:`assemble` turns assembly text into a relocatable
:class:`ObjectFile`; :func:`link` combines objects (plus a ``crt0``
startup stub) into an executable :class:`Image` with the symbol and
procedure tables the SoftCache memory controller chunks from.
"""

from .assembler import AsmError, assemble
from .image import Image, ProcSpan
from .linker import LinkError, assemble_and_link, link
from .objfile import ObjectFile, Reloc, Relocation, Section, Symbol

__all__ = [
    "AsmError", "Image", "LinkError", "ObjectFile", "ProcSpan", "Reloc",
    "Relocation", "Section", "Symbol", "assemble", "assemble_and_link",
    "link",
]
