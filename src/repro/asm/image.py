"""Executable image produced by the linker.

An :class:`Image` is what the server-side memory controller (MC) holds:
the fully linked text and data segments at their final addresses, plus
the symbol/procedure tables the MC's chunkers use to break the program
into basic blocks or procedures.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..layout import DATA_BASE, TEXT_BASE


@dataclass(frozen=True, slots=True)
class ProcSpan:
    """A procedure in the text segment: ``[addr, addr + size)``."""

    name: str
    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass(slots=True)
class Image:
    """A linked, loadable executable."""

    name: str
    text: bytes
    data: bytes
    bss_size: int
    entry: int
    symbols: dict[str, int] = field(default_factory=dict)
    procs: list[ProcSpan] = field(default_factory=list)
    #: Data-segment object sizes: address -> bytes to the next symbol
    #: (gap method over *all* symbols including locals).  Used by the
    #: D-cache to find pinnable 4-byte scalars.
    data_object_sizes: dict[int, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    _proc_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.procs = sorted(self.procs, key=lambda p: p.addr)
        self._proc_starts = [p.addr for p in self.procs]

    # -- geometry -----------------------------------------------------

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    @property
    def bss_base(self) -> int:
        return (self.data_end + 7) & ~7

    @property
    def bss_end(self) -> int:
        return self.bss_base + self.bss_size

    @property
    def heap_base(self) -> int:
        """First address past all static data (start of the heap)."""
        return (self.bss_end + 15) & ~15

    def in_text(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    # -- accessors ------------------------------------------------------

    def word_at(self, addr: int) -> int:
        """Read the 32-bit little-endian word at text/data address *addr*."""
        if self.in_text(addr):
            off = addr - self.text_base
            return int.from_bytes(self.text[off:off + 4], "little")
        if self.data_base <= addr < self.data_end:
            off = addr - self.data_base
            return int.from_bytes(self.data[off:off + 4], "little")
        raise ValueError(f"address {addr:#x} outside image {self.name}")

    def proc_at(self, addr: int) -> ProcSpan | None:
        """Find the procedure containing *addr*, or None."""
        i = bisect_right(self._proc_starts, addr) - 1
        if i >= 0 and self.procs[i].contains(addr):
            return self.procs[i]
        return None

    def proc_named(self, name: str) -> ProcSpan:
        """Look up a procedure by name; raises KeyError if absent."""
        for p in self.procs:
            if p.name == name:
                return p
        raise KeyError(name)

    def symbol_name(self, addr: int) -> str | None:
        """Best-effort reverse symbol lookup (exact matches only)."""
        for name, a in self.symbols.items():
            if a == addr:
                return name
        return None

    @property
    def static_text_size(self) -> int:
        """Static .text size in bytes (Table 1's 'Static .text')."""
        return len(self.text)
