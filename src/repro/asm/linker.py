"""Linker: combine object files into an executable :class:`Image`.

Lays out all ``.text`` sections at :data:`~repro.layout.TEXT_BASE`,
all ``.data`` at :data:`~repro.layout.DATA_BASE` and ``.bss`` after
data, resolves symbols and applies relocations.  A ``crt0`` startup
stub is prepended that establishes the stack, clears the frame-pointer
chain sentinel and calls ``main`` — the fixed stack discipline the
SoftCache runtime relies on to walk frames.

Like a conventional static link (and like the paper's ``gcc -O4``
builds in Table 1), *everything* given to the linker ends up in the
image whether it is called or not; there is no dead-code garbage
collection.  This is what makes static text a large overestimate of
the working set.
"""

from __future__ import annotations

from ..layout import DATA_BASE, STACK_TOP, TEXT_BASE, align
from .assembler import assemble
from .image import Image, ProcSpan
from .objfile import ObjectFile, Reloc

_CRT0 = f"""
    .text
    .global _start
    .proc _start
_start:
    li   sp, {STACK_TOP}
    add  fp, zero, zero        ; fp sentinel terminates stack walks
    jal  main
    syscall exit               ; exit code = main's return value in a0
"""


class LinkError(ValueError):
    """Undefined/duplicate symbols or out-of-range relocations."""


def link(objects: list[ObjectFile], name: str = "a.out", *,
         add_crt0: bool = True, entry_symbol: str = "_start") -> Image:
    """Link *objects* into an executable :class:`Image`.

    With *add_crt0* (the default) the startup stub is prepended and the
    image entry is ``_start``; otherwise *entry_symbol* must be defined
    by one of the objects.
    """
    objs = list(objects)
    if add_crt0:
        objs.insert(0, assemble(_CRT0, "crt0"))

    # -- assign section base offsets -----------------------------------
    text_offsets: dict[int, int] = {}
    data_offsets: dict[int, int] = {}
    bss_offsets: dict[int, int] = {}
    text_size = data_size = bss_size = 0
    for i, obj in enumerate(objs):
        sec = obj.sections.get(".text")
        text_offsets[i] = text_size
        if sec is not None:
            if len(sec.data) % 4:
                raise LinkError(f"{obj.name}: .text size not word aligned")
            text_size += len(sec.data)
        sec = obj.sections.get(".data")
        data_size = align(data_size, 8)
        data_offsets[i] = data_size
        if sec is not None:
            data_size += len(sec.data)
    bss_base = align(DATA_BASE + data_size, 8)
    for i, obj in enumerate(objs):
        sec = obj.sections.get(".bss")
        bss_size = align(bss_size, 8)
        bss_offsets[i] = bss_size
        if sec is not None:
            bss_size += sec.bss_size

    # -- build the global and per-object symbol tables ------------------
    def sym_addr(i: int, section: str, offset: int) -> int:
        if section == ".text":
            return TEXT_BASE + text_offsets[i] + offset
        if section == ".data":
            return DATA_BASE + data_offsets[i] + offset
        if section == ".bss":
            return bss_base + bss_offsets[i] + offset
        raise LinkError(f"unknown section {section}")

    global_syms: dict[str, int] = {}
    global_def_obj: dict[str, str] = {}
    local_syms: list[dict[str, int]] = []
    proc_marks: list[tuple[str, int]] = []
    for i, obj in enumerate(objs):
        locals_i: dict[str, int] = {}
        for sym in obj.symbols.values():
            addr = sym_addr(i, sym.section, sym.offset)
            locals_i[sym.name] = addr
            if sym.is_global:
                if sym.name in global_syms:
                    raise LinkError(
                        f"duplicate global symbol {sym.name!r} in "
                        f"{obj.name} and {global_def_obj[sym.name]}")
                global_syms[sym.name] = addr
                global_def_obj[sym.name] = obj.name
            if sym.is_proc and sym.section == ".text":
                proc_marks.append((sym.name, addr))
        local_syms.append(locals_i)

    # -- concatenate segments -------------------------------------------
    text = bytearray(text_size)
    data = bytearray(data_size)
    for i, obj in enumerate(objs):
        sec = obj.sections.get(".text")
        if sec is not None:
            off = text_offsets[i]
            text[off:off + len(sec.data)] = sec.data
        sec = obj.sections.get(".data")
        if sec is not None:
            off = data_offsets[i]
            data[off:off + len(sec.data)] = sec.data

    # -- apply relocations ------------------------------------------------
    for i, obj in enumerate(objs):
        for rel in obj.relocations:
            target = local_syms[i].get(rel.symbol)
            if target is None:
                target = global_syms.get(rel.symbol)
            if target is None:
                raise LinkError(
                    f"{obj.name}: undefined symbol {rel.symbol!r}")
            value = target + rel.addend
            if rel.section == ".text":
                buf, place = text, text_offsets[i] + rel.offset
                site_addr = TEXT_BASE + place
            elif rel.section == ".data":
                buf, place = data, data_offsets[i] + rel.offset
                site_addr = DATA_BASE + place
            else:
                raise LinkError(f"relocation in {rel.section}")
            word = int.from_bytes(buf[place:place + 4], "little")
            word = _apply_reloc(rel.kind, word, site_addr, value, obj.name)
            buf[place:place + 4] = word.to_bytes(4, "little")

    # -- procedure spans ---------------------------------------------------
    proc_marks.sort(key=lambda item: item[1])
    procs = []
    text_end = TEXT_BASE + text_size
    for j, (pname, paddr) in enumerate(proc_marks):
        pend = proc_marks[j + 1][1] if j + 1 < len(proc_marks) else text_end
        procs.append(ProcSpan(pname, paddr, pend - paddr))

    entry = global_syms.get(entry_symbol)
    if entry is None:
        raise LinkError(f"entry symbol {entry_symbol!r} undefined")

    # data-object sizes by the gap method over every symbol (locals
    # included) so 4-byte scalars are identifiable for pinning
    data_addrs = sorted({addr for locals_i in local_syms
                         for addr in locals_i.values()
                         if DATA_BASE <= addr < bss_base + bss_size})
    data_addrs.append(bss_base + bss_size)
    data_object_sizes = {
        data_addrs[i]: data_addrs[i + 1] - data_addrs[i]
        for i in range(len(data_addrs) - 1)}

    return Image(name=name, text=bytes(text), data=bytes(data),
                 bss_size=bss_size, entry=entry, symbols=global_syms,
                 procs=procs, data_object_sizes=data_object_sizes)


def _apply_reloc(kind: Reloc, word: int, site: int, value: int,
                 objname: str) -> int:
    if kind is Reloc.J26:
        if value & 3:
            raise LinkError(f"{objname}: jump target misaligned: {value:#x}")
        t26 = value >> 2
        if t26 >> 26:
            raise LinkError(f"{objname}: jump target out of range: "
                            f"{value:#x}")
        return (word & 0xFC000000) | t26
    if kind is Reloc.BR16:
        disp = (value - (site + 4)) >> 2
        if not -(1 << 15) <= disp < (1 << 15):
            raise LinkError(f"{objname}: branch at {site:#x} cannot reach "
                            f"{value:#x}")
        return (word & 0xFFFF0000) | (disp & 0xFFFF)
    if kind is Reloc.HI16:
        return (word & 0xFFFF0000) | ((value >> 16) & 0xFFFF)
    if kind is Reloc.LO16:
        return (word & 0xFFFF0000) | (value & 0xFFFF)
    if kind is Reloc.W32:
        return value & 0xFFFFFFFF
    raise LinkError(f"unknown relocation kind {kind}")  # pragma: no cover


def assemble_and_link(sources: dict[str, str] | str,
                      name: str = "a.out") -> Image:
    """Convenience: assemble one or more sources and link them.

    *sources* is either a single assembly string or a mapping of
    object-name to source text.
    """
    if isinstance(sources, str):
        objs = [assemble(sources, "main.s")]
    else:
        objs = [assemble(text, objname) for objname, text in sources.items()]
    return link(objs, name)
