"""Object-file model for the repro toolchain.

The assembler produces :class:`ObjectFile` instances; the linker
combines them into an executable :class:`~repro.asm.image.Image`.
Everything is in-memory — there is no on-disk format — but the model
mirrors a conventional relocatable object: sections, a symbol table
and relocation records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Reloc(enum.Enum):
    """Relocation kinds.

    * ``J26``  — 26-bit absolute word target of a J-format jump/call.
    * ``BR16`` — 16-bit pc-relative word displacement of a branch.
    * ``HI16`` — upper 16 bits of a symbol address (``lui``).
    * ``LO16`` — lower 16 bits of a symbol address (``ori``).
    * ``W32``  — full 32-bit address in a data word (jump tables,
      function pointers — the *ambiguous pointers* of the paper).
    """

    J26 = "J26"
    BR16 = "BR16"
    HI16 = "HI16"
    LO16 = "LO16"
    W32 = "W32"


@dataclass(frozen=True, slots=True)
class Relocation:
    """One relocation record: patch *section* at *offset* with the
    address of *symbol* + *addend* according to *kind*."""

    section: str
    offset: int
    kind: Reloc
    symbol: str
    addend: int = 0


@dataclass(frozen=True, slots=True)
class Symbol:
    """A defined symbol: *offset* within *section* of this object."""

    name: str
    section: str
    offset: int
    is_global: bool = False
    #: For text symbols: True when this label starts a procedure
    #: (set by ``.proc`` or the compiler); used by the procedure chunker.
    is_proc: bool = False


@dataclass(slots=True)
class Section:
    """A named section with raw bytes (``.bss`` carries only a size)."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    bss_size: int = 0

    @property
    def size(self) -> int:
        return self.bss_size if self.name == ".bss" else len(self.data)


@dataclass(slots=True)
class ObjectFile:
    """A relocatable object produced by one assembler run."""

    name: str = "<anon>"
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)
    pending_globals: set[str] = field(default_factory=set)

    def section(self, name: str) -> Section:
        """Get or create the section *name*."""
        sec = self.sections.get(name)
        if sec is None:
            sec = self.sections[name] = Section(name)
        return sec

    def define(self, name: str, section: str, offset: int, *,
               is_global: bool = False, is_proc: bool = False) -> None:
        """Define symbol *name*; raises on duplicate definition."""
        if name in self.symbols:
            raise ValueError(f"duplicate symbol: {name}")
        self.symbols[name] = Symbol(name, section, offset,
                                    is_global=is_global, is_proc=is_proc)

    def mark_global(self, name: str) -> None:
        """Mark *name* global (may be called before its definition)."""
        sym = self.symbols.get(name)
        if sym is not None:
            self.symbols[name] = Symbol(sym.name, sym.section, sym.offset,
                                        is_global=True, is_proc=sym.is_proc)
        else:
            self.pending_globals.add(name)

    def mark_proc(self, name: str) -> None:
        """Mark an already-defined text symbol as a procedure entry."""
        sym = self.symbols[name]
        self.symbols[name] = Symbol(sym.name, sym.section, sym.offset,
                                    is_global=sym.is_global, is_proc=True)

    def finalize(self) -> None:
        """Apply pending ``.global`` marks; call once after assembly."""
        for name in self.pending_globals:
            sym = self.symbols.get(name)
            if sym is None:
                raise ValueError(f".global for undefined symbol: {name}")
            self.symbols[name] = Symbol(sym.name, sym.section, sym.offset,
                                        is_global=True, is_proc=sym.is_proc)
        self.pending_globals.clear()
