"""Flight-recorder overhead gate: disabled tracing must cost nothing.

The observability layer's core contract is *zero overhead when
disabled*: components hold ``tracer = None`` unless an **enabled**
recorder was attached, so a config carrying
``FlightRecorder(enabled=False)`` must execute the exact seed code
path.  This benchmark pins that contract on the thrash workload (the
configuration with the most emission sites on the hot path): it times
best-of-N runs with no recorder and with a disabled recorder and fails
if the disabled-recorder runs are more than ``--max-overhead-pct``
slower (CI uses 2%).

The *enabled* cost is also measured and reported — informational only,
since enabling tracing is an explicit opt-in.

The same ceiling gates the live ops plane: a ``--serve`` endpoint
that is attached but never scraped adds only one attribute read per
miss (the control plane's ``pending`` flag), so the served-but-idle
configuration must stay under the same ``--max-overhead-pct``.

Usage::

    python benchmarks/bench_trace_overhead.py [--repeat N]
        [--max-overhead-pct P] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.net import LOCAL_LINK  # noqa: E402
from repro.obs import FlightRecorder  # noqa: E402
from repro.softcache import SoftCacheConfig, SoftCacheSystem  # noqa: E402
from repro.workloads import build_workload  # noqa: E402


def _time_config(image, config, repeat: int, server=None) -> list[float]:
    SoftCacheSystem(image, config).run()  # warm-up, untimed
    walls = []
    for _ in range(repeat):
        system = SoftCacheSystem(image, config)
        if server is not None:
            server.attach_system(system)
        t0 = time.perf_counter()
        system.run()
        walls.append(time.perf_counter() - t0)
    return walls


def run_benchmark(repeat: int = 5) -> dict:
    image = build_workload("sensor", 0.05)

    def thrash_config(recorder=None) -> SoftCacheConfig:
        return SoftCacheConfig(tcache_size=768, link=LOCAL_LINK,
                               record_timeline=False, recorder=recorder)

    baseline = _time_config(image, thrash_config(), repeat)
    disabled = _time_config(
        image, thrash_config(FlightRecorder(enabled=False)), repeat)
    enabled = _time_config(
        image, thrash_config(FlightRecorder()), repeat)
    # the ops endpoint is bound once outside the timed region (the
    # socket is process setup, not per-run cost) and re-attached per
    # run; nothing ever scrapes it, matching a fleet that carries
    # --serve but has no collector pointed at it yet
    from repro.obs import ObsServer
    with ObsServer("127.0.0.1", 0) as obs_server:
        served = _time_config(image, thrash_config(), repeat,
                              server=obs_server)

    best_base = min(baseline)
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    best_served = min(served)
    return {
        "schema": "BENCH_trace_overhead/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeat": repeat,
        "baseline": {"wall_s_best": best_base,
                     "wall_s_p50": statistics.median(baseline),
                     "wall_s_all": baseline},
        "disabled_recorder": {"wall_s_best": best_disabled,
                              "wall_s_p50": statistics.median(disabled),
                              "wall_s_all": disabled},
        "enabled_recorder": {"wall_s_best": best_enabled,
                             "wall_s_p50": statistics.median(enabled),
                             "wall_s_all": enabled},
        "served_unscraped": {"wall_s_best": best_served,
                             "wall_s_p50": statistics.median(served),
                             "wall_s_all": served},
        "disabled_overhead_pct":
            100.0 * (best_disabled / best_base - 1.0),
        "enabled_overhead_pct":
            100.0 * (best_enabled / best_base - 1.0),
        "served_overhead_pct":
            100.0 * (best_served / best_base - 1.0),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--max-overhead-pct", type=float, default=2.0,
                        help="fail if a disabled recorder costs more "
                             "than this vs no recorder at all")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_trace_overhead.json"))
    args = parser.parse_args(argv)

    results = run_benchmark(args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    base = results["baseline"]["wall_s_best"] * 1e3
    dis = results["disabled_recorder"]["wall_s_best"] * 1e3
    ena = results["enabled_recorder"]["wall_s_best"] * 1e3
    srv = results["served_unscraped"]["wall_s_best"] * 1e3
    print(f"baseline (no recorder)   : best {base:.1f}ms")
    print(f"recorder(enabled=False)  : best {dis:.1f}ms  "
          f"({results['disabled_overhead_pct']:+.2f}%)")
    print(f"recorder(enabled=True)   : best {ena:.1f}ms  "
          f"({results['enabled_overhead_pct']:+.2f}%, informational)")
    print(f"served, never scraped    : best {srv:.1f}ms  "
          f"({results['served_overhead_pct']:+.2f}%)")
    print(f"wrote {args.out}")

    failed = False
    for label, key in (("disabled-recorder", "disabled_overhead_pct"),
                       ("served-unscraped", "served_overhead_pct")):
        if results[key] > args.max_overhead_pct:
            print(f"FAIL: {label} overhead {results[key]:.2f}% "
                  f"exceeds {args.max_overhead_pct:.1f}%",
                  file=sys.stderr)
            failed = True
        else:
            print(f"overhead check OK ({label}): "
                  f"{results[key]:.2f}% <= "
                  f"{args.max_overhead_pct:.1f}%")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
