"""Figure 8: eviction rate over time versus CC memory size (ARM)."""

from conftest import save_result

from repro.eval import fig8, render_fig8


def test_fig8(benchmark):
    series = benchmark.pedantic(fig8, kwargs={"scale": 0.3, "nbins": 16},
                                rounds=1, iterations=1)
    save_result("fig8", render_fig8(series))
    low, fit, roomy = series
    # below the working set: continuous paging
    assert low.steady_state_rate > 100
    # fitting: paging falls to zero in steady state, with the paper's
    # "minor paging ... at the end to load the terminal statistics
    # routines"
    assert fit.steady_state_rate == 0
    assert fit.final_blip > 0
    assert fit.total_evictions < low.total_evictions / 4
    # headroom: no paging at all
    assert roomy.total_evictions == 0
