"""Figure 7: software tcache miss rate versus tcache size, and the
cross-figure claim that SW and HW working-set knees are similar."""

import os

from conftest import BENCH_SCALE, save_result

from repro.eval import fig6, fig7, render_fig7


def test_fig7(benchmark):
    curves = benchmark.pedantic(
        fig7, kwargs={"scale": BENCH_SCALE,
                      "processes": os.cpu_count()},
        rounds=1, iterations=1)
    save_result("fig7", render_fig7(curves))
    for curve in curves:
        rates = [r.miss_rate for r in curve.results]
        assert rates[0] > 0.01, curve.workload          # thrashing
        assert rates[-1] < rates[0] / 50, curve.workload  # knee passed
        assert curve.knee_bytes() is not None, curve.workload


def test_knees_similar_to_hardware(benchmark):
    """§2.2: "the cache size required to capture the working set
    appears similar for the software cache as for a hardware cache"."""
    def both():
        procs = os.cpu_count()
        return ({c.workload: c.knee_bytes()
                 for c in fig7(scale=BENCH_SCALE, processes=procs)},
                {c.workload: c.knee_bytes
                 for c in fig6(scale=BENCH_SCALE, processes=procs)})

    sw, hw = benchmark.pedantic(both, rounds=1, iterations=1)
    save_result("fig6_fig7_knees",
                "SW vs HW working-set knees (bytes):\n" +
                "\n".join(f"  {w}: sw={sw[w]} hw={hw[w]}" for w in sw))
    for workload, sw_knee in sw.items():
        hw_knee = hw[workload]
        assert sw_knee is not None and hw_knee is not None
        # within 4x either way = "similar" on a log-2 size axis
        assert hw_knee / 4 <= sw_knee <= hw_knee * 4, (
            workload, sw_knee, hw_knee)
