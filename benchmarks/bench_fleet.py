"""Figure 1 deployment: server scaling across a device fleet."""

from conftest import save_result

from repro.eval.render import ascii_table
from repro.fleet import simulate_fleet
from repro.softcache import SoftCacheConfig
from repro.workloads import build_workload


def test_fleet_scaling(benchmark):
    def run():
        image = build_workload("sensor", 0.05)
        config = SoftCacheConfig(tcache_size=8192)
        return [simulate_fleet(image, n, config) for n in (1, 4, 16)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[r.n_clients, r.mc_chunks_built, r.mc_requests,
             f"{100 * r.chunk_cache_sharing:.0f}%",
             f"{100 * r.link_utilization:.2f}%",
             f"{r.mean_queue_delay_s * 1e6:.1f}us"] for r in results]
    save_result("fleet", ascii_table(
        ["clients", "MC rewrites", "MC requests", "shared",
         "link util", "mean queue"],
        rows, title="Figure 1 deployment: one server, many devices "
                    "(simultaneous boot)"))
    one, four, sixteen = results
    # server-side rewriting work is constant in fleet size
    assert one.mc_chunks_built == four.mc_chunks_built \
        == sixteen.mc_chunks_built
    # requests scale linearly; sharing approaches 1
    assert sixteen.mc_requests == 16 * one.mc_requests
    assert sixteen.chunk_cache_sharing > 0.9
    # a simultaneous 16-device boot visibly loads the uplink
    assert sixteen.link_utilization > four.link_utilization
