"""Fleet-scale benchmark: the event scheduler vs fleet size.

Sweeps the discrete-event fleet simulation across client counts up to
10k+ devices (capture once per distinct client, replay everyone
through one heap-ordered clock), recording host wall clock, uplink
utilization, queueing delay, and shard balance at each point.
Results are written to ``BENCH_fleet.json`` so CI can archive them
and diff runs across commits.

Usage::

    python benchmarks/bench_fleet.py [--max-clients N] [--shards N]
                                     [--hub-capacity B] [--out PATH]
                                     [--budget-s S]

``--budget-s`` turns the largest run's wall clock into a scaling
gate: exit non-zero if simulating the full fleet took longer than the
budget (CI pins 10k clients under a fixed budget so the event loop
can never regress to per-client quadratic behaviour unnoticed).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import simulate_fleet  # noqa: E402
from repro.softcache import SoftCacheConfig  # noqa: E402
from repro.workloads import build_workload  # noqa: E402


def _point(image, config, n: int, *, shards: int, hub_capacity: int,
           stagger_s: float) -> dict:
    t0 = time.perf_counter()
    r = simulate_fleet(image, n, config, stagger_s=stagger_s,
                       shards=shards, hub_capacity=hub_capacity)
    wall = time.perf_counter() - t0
    return {
        "clients": n,
        "distinct_clients": r.distinct_clients,
        "wall_s": wall,
        "makespan_s": r.makespan_s,
        "link_utilization": r.link_utilization,
        "mean_queue_delay_s": r.mean_queue_delay_s,
        "max_queue_delay_s": r.max_queue_delay_s,
        "delayed_requests": r.delayed_requests,
        "mc_requests": r.mc_requests,
        "mc_chunks_built": r.mc_chunks_built,
        "chunk_cache_sharing": r.chunk_cache_sharing,
        "shard_requests": [s.requests for s in r.shard_loads],
        "shard_balance": r.shard_balance,
        "hub_hit_rate": r.hub_hit_rate,
        "rollout_makespan_s": r.rollout_makespan_s,
        "clients_converged": r.clients_converged,
    }


def run_benchmarks(max_clients: int, shards: int, hub_capacity: int,
                   stagger_s: float,
                   update_at: tuple = ()) -> dict:
    image = build_workload("sensor", 0.05)
    config = SoftCacheConfig(tcache_size=8192, record_timeline=False,
                             update_at=update_at)
    counts = [n for n in (1, 10, 100, 1000, 10_000)
              if n <= max_clients]
    if counts[-1] != max_clients:
        counts.append(max_clients)
    points = [_point(image, config, n, shards=shards,
                     hub_capacity=hub_capacity, stagger_s=stagger_s)
              for n in counts]
    return {
        "schema": "BENCH_fleet/2",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "shards": shards,
        "hub_capacity": hub_capacity,
        "stagger_s": stagger_s,
        "update_at": list(update_at),
        "scaling": points,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-clients", type=int, default=10_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--hub-capacity", type=int, default=64 * 1024)
    parser.add_argument("--stagger-us", type=float, default=50.0,
                        help="boot-time offset between clients "
                             "(microseconds)")
    parser.add_argument("--update-at", metavar="CYCLES:IMAGE",
                        action="append", default=None,
                        help="publish a live update mid-run; the "
                             "rollout-wavefront column then reports "
                             "time to full-fleet convergence")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_fleet.json"))
    parser.add_argument("--budget-s", type=float, default=None,
                        help="fail if the largest fleet exceeds this "
                             "wall clock")
    args = parser.parse_args(argv)

    results = run_benchmarks(args.max_clients, args.shards,
                             args.hub_capacity,
                             args.stagger_us * 1e-6,
                             tuple(args.update_at or ()))
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    print(f"{'clients':>8} {'wall':>9} {'makespan':>10} {'util':>6} "
          f"{'mean queue':>11} {'balance':>8} {'hub':>5} "
          f"{'rollout':>9}")
    for p in results["scaling"]:
        print(f"{p['clients']:>8} {p['wall_s'] * 1e3:>7.0f}ms "
              f"{p['makespan_s']:>9.3f}s "
              f"{100 * p['link_utilization']:>5.1f}% "
              f"{p['mean_queue_delay_s'] * 1e6:>9.1f}us "
              f"{p['shard_balance']:>8.2f} "
              f"{100 * p['hub_hit_rate']:>4.0f}% "
              f"{p['rollout_makespan_s'] * 1e3:>7.2f}ms")
    print(f"wrote {args.out}")

    biggest = results["scaling"][-1]
    # sanity: server-side rewrite work must stay constant in fleet
    # size (the whole point of the shared chunk cache).  With a live
    # update in play the single-client point skips stale-version
    # serving entirely, so compare against the previous sweep point
    # instead of the smallest.
    smallest = results["scaling"][-2 if args.update_at else 0] \
        if len(results["scaling"]) > 1 else biggest
    if biggest["mc_chunks_built"] != smallest["mc_chunks_built"]:
        print("FAIL: MC rewrite work grew with fleet size",
              file=sys.stderr)
        return 1
    if args.budget_s is not None:
        if biggest["wall_s"] > args.budget_s:
            print(f"FAIL: {biggest['clients']} clients took "
                  f"{biggest['wall_s']:.1f}s, budget "
                  f"{args.budget_s:.0f}s", file=sys.stderr)
            return 1
        print(f"budget check OK: {biggest['clients']} clients in "
              f"{biggest['wall_s']:.1f}s <= {args.budget_s:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
