"""Figure 5: relative execution time of the software I-cache."""

from conftest import save_result

from repro.eval import fig5, render_fig5


def test_fig5(benchmark):
    bars = benchmark.pedantic(fig5, kwargs={"scale": 0.15},
                              rounds=1, iterations=1)
    save_result("fig5", render_fig5(bars))
    ideal, big, mid, small = bars
    assert ideal.relative_time == 1.0
    # working set fits: modest overhead (paper: 1.19/1.17), and the
    # two fitting sizes behave identically
    assert 1.0 < big.relative_time < 1.35
    assert abs(big.relative_time - mid.relative_time) < 0.02
    # working set does not fit: "performance is awful ... but the
    # system continues to operate"
    assert small.relative_time > 3.0
    assert small.evictions > 0
