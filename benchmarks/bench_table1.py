"""Table 1: dynamic vs static .text sizes for the SPARC benchmarks."""

import os

from conftest import BENCH_SCALE, save_result

from repro.eval import render_table1, table1


def test_table1(benchmark):
    rows = benchmark.pedantic(
        table1, kwargs={"scale": BENCH_SCALE,
                        "processes": os.cpu_count()},
        rounds=1, iterations=1)
    save_result("table1", render_table1(rows))
    assert len(rows) == 4
    for row in rows:
        # the headline: dynamic text is a fraction of static text
        assert row.dynamic_text < 0.5 * row.static_text, row
        # and static text is a genuine statically linked image
        assert row.static_text > 8 * 1024
