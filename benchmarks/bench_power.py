"""§4 novel capability: memory-bank power gating.

"we could dynamically deduce the working set and shut down unneeded
memory banks to reduce power consumption ... 45% of the total power
consumption lies in the cache alone."
"""

from conftest import save_result

from repro.eval import native_trace
from repro.eval.render import ascii_table
from repro.power import StrongARMPower, power_sweep


def test_bank_power(benchmark):
    def run():
        trace_run = native_trace("adpcm_enc", 0.15)
        return trace_run, power_sweep(
            trace_run.image, trace_run.trace,
            [2048, 4096, 8192, 16384, 32768], bank_size=1024)

    trace_run, results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{r.tcache_size // 1024}KB", r.nbanks,
             f"{r.mean_duty:.2f}", r.wakeups,
             f"{100 * r.icache_power_saving_fraction:.1f}%"]
            for r in results]
    save_result("power", ascii_table(
        ["tcache", "banks", "duty cycle", "wakeups", "chip power saved"],
        rows,
        title="§4: bank gating (vs always-on HW I-cache; StrongARM "
              "fractions: I$ 27%, D$ 16%, WB 2%)"))
    # duty falls as provisioned memory grows past the working set
    duties = [r.mean_duty for r in results]
    assert duties == sorted(duties, reverse=True)
    # a roomy memory saves a solid chunk of chip power
    assert results[-1].icache_power_saving_fraction > 0.15
    # the working set itself stays powered: duty never reaches zero
    assert results[-1].mean_duty > 0.0
    assert abs(StrongARMPower().cache_total_fraction - 0.45) < 1e-9
