"""Full associativity (§1/§2): the software cache is conflict-free.

"a software cache can be fully associative so that a module can be
guaranteed free of conflict misses provided the module fits in the
cache" — compared against hardware caches of the same capacity, where
direct mapping suffers conflicts and full associativity is the
impractical-in-hardware ideal.
"""

from conftest import BENCH_SCALE, save_result

from repro.eval import native_trace, replay_tcache
from repro.eval.render import ascii_table
from repro.hwcache import simulate_direct_mapped, simulate_fully_associative


def test_associativity(benchmark):
    def run():
        rows = []
        for name in ("compress95", "hextobdd"):
            trace_run = native_trace(name, BENCH_SCALE)
            size = 8192
            direct = simulate_direct_mapped(trace_run.trace, size)
            full = simulate_fully_associative(trace_run.trace, size)
            soft = replay_tcache(trace_run.image, trace_run.trace, size)
            rows.append((name, size, direct.misses, full.misses,
                         soft.translations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ascii_table(
        ["workload", "size", "HW direct misses", "HW full-assoc misses",
         "SW translations"],
        [list(r) for r in rows],
        title="Associativity at equal capacity (8KB, past the working-set knee)")
    save_result("associativity", table)
    for name, size, direct, full, soft in rows:
        # at a capacity that fits the working set, full associativity
        # removes the remaining conflict misses
        assert full <= direct
        # the software cache misses at chunk (not line) granularity:
        # far fewer service events than a direct-mapped cache has
        # misses at the same size
        assert soft < direct, name
