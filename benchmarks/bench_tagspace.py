"""§2.2 / Fig 6 caption: hardware tags add 11-18% for 32-bit addrs."""

from conftest import save_result

from repro.eval import render_tagspace, tagspace
from repro.hwcache import overhead_band


def test_tagspace(benchmark):
    rows = benchmark.pedantic(tagspace, rounds=1, iterations=1)
    save_result("tagspace", render_tagspace(rows))
    lo, hi = overhead_band([r[0] for r in rows])
    assert 10.5 <= lo <= 13.5
    assert 16.5 <= hi <= 18.5
    # monotone: smaller caches carry relatively more tag bits
    percents = [pct for _, pct in rows]
    assert percents == sorted(percents, reverse=True)
