"""§2.2 ablation: the rewriting-added instructions and their removal.

"In our current implementation, we add two new instructions per
translated basic block.  These extra instructions could be optimized
away to provide a performance closer to that of the native binary."
The block chunker measures the cost of the added instructions; the EBB
chunker is the optimized variant.
"""

from conftest import save_result

from repro.eval import extra_instruction_ablation, render_ablation


def test_extra_instruction_ablation(benchmark):
    rows = benchmark.pedantic(extra_instruction_ablation,
                              kwargs={"scale": 0.1},
                              rounds=1, iterations=1)
    save_result("ablation", render_ablation(rows))
    block, ebb = rows
    assert block.granularity == "block" and ebb.granularity == "ebb"
    # the block chunker really adds instructions; EBB removes them
    assert block.extra_instr_per_chunk > 0.3
    assert ebb.extra_instr_per_chunk < 0.1
    # and that is visible in steady-state time
    assert ebb.relative_time < block.relative_time
    assert ebb.relative_time < 1.1
