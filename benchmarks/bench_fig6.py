"""Figure 6: hardware I-cache miss rate versus cache size."""

import os

from conftest import BENCH_SCALE, save_result

from repro.eval import fig6, render_fig6


def test_fig6(benchmark):
    curves = benchmark.pedantic(
        fig6, kwargs={"scale": BENCH_SCALE,
                      "processes": os.cpu_count()},
        rounds=1, iterations=1)
    save_result("fig6", render_fig6(curves))
    for curve in curves:
        rates = [r.miss_rate for r in curve.results]
        # small caches miss a lot, large caches almost never
        assert rates[0] > 0.05, curve.workload
        assert rates[-1] < 0.005, curve.workload
        # the curve has a knee within the swept range
        assert curve.knee_bytes is not None, curve.workload
        assert 512 <= curve.knee_bytes <= 32768, curve.workload
