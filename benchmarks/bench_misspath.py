"""Miss-path benchmark: where the miss-service time goes.

Runs the SoftCache miss path under a thrashing and a comfortable
tcache, times each run on the host clock, splits the miss service into
its phases (serve / link / install / patch, both in simulated cycles
and host seconds), and sweeps the successor-prefetch depth.  Results
are written to ``BENCH_softcache.json`` so CI can archive them and
diff runs across commits.

Usage::

    python benchmarks/bench_misspath.py [--repeat N] [--out PATH]
                                        [--floor-ms MS]

``--floor-ms`` turns the thrash wall-clock into a regression gate:
exit non-zero if the best-of-N run is slower than the floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.net import LOCAL_LINK, LinkModel  # noqa: E402
from repro.softcache import SoftCacheConfig, SoftCacheSystem  # noqa: E402
from repro.workloads import build_workload  # noqa: E402


def _phase_dict(stats) -> dict:
    return {
        "miss_serve_cycles": stats.miss_serve_cycles,
        "miss_link_cycles": stats.miss_link_cycles,
        "miss_install_cycles": stats.miss_install_cycles,
        "miss_patch_cycles": stats.miss_patch_cycles,
        "miss_service_cycles": stats.miss_service_cycles,
        "miss_serve_host_s": stats.miss_serve_host_s,
        "miss_install_host_s": stats.miss_install_host_s,
        "miss_patch_host_s": stats.miss_patch_host_s,
    }


def _timed_run(image, config, repeat: int) -> dict:
    """Best/median-of-*repeat* wall clock plus the final run's stats.

    One untimed warm-up run precedes the measured ones so first-run
    costs (bytecode caches, allocator growth, branch-predictor and
    icache warming of the interpreter loop) don't pollute the sample;
    the median is reported alongside best/mean because it is the
    noise-robust figure to diff across commits.
    """
    SoftCacheSystem(image, config).run()  # warm-up, untimed
    walls = []
    system = None
    report = None
    for _ in range(repeat):
        system = SoftCacheSystem(image, config)
        t0 = time.perf_counter()
        report = system.run()
        walls.append(time.perf_counter() - t0)
    stats = system.stats
    return {
        "wall_s_best": min(walls),
        "wall_s_mean": sum(walls) / len(walls),
        "wall_s_p50": statistics.median(walls),
        "wall_s_all": walls,
        "instructions": report.instructions,
        "cycles": report.cycles,
        "translations": stats.translations,
        "evictions": stats.evictions,
        "patches": stats.patches,
        "phases": _phase_dict(stats),
    }


def run_benchmarks(repeat: int = 3) -> dict:
    image = build_workload("sensor", 0.05)
    results: dict = {
        "schema": "BENCH_softcache/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    results["thrash"] = _timed_run(image, SoftCacheConfig(
        tcache_size=768, link=LOCAL_LINK, record_timeline=False), repeat)
    results["comfortable"] = _timed_run(image, SoftCacheConfig(
        tcache_size=8192, link=LOCAL_LINK, record_timeline=False), repeat)

    # successor-prefetch sweep over the networked link: simulated
    # miss-service time is the figure of merit here, not host time.
    sweep = []
    for depth in (0, 1, 2, 4):
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=2048, prefetch_depth=depth, link=LinkModel(),
            record_timeline=False))
        report = system.run()
        s = system.stats
        sweep.append({
            "depth": depth,
            "cycles": report.cycles,
            "miss_service_cycles": s.miss_service_cycles,
            "demand_translations": s.demand_translations,
            "prefetch_installs": s.prefetch_installs,
            "prefetch_hits": s.prefetch_hits,
            "prefetch_drops": s.prefetch_drops,
            "wasted_prefetch_bytes": s.wasted_prefetch_bytes,
            "link_exchanges": system.link_stats.exchanges,
            "batched_chunks": system.link_stats.batched_chunks,
        })
    results["prefetch_sweep"] = sweep
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_softcache.json"))
    parser.add_argument("--floor-ms", type=float, default=None,
                        help="fail if the best thrash run exceeds this")
    args = parser.parse_args(argv)

    results = run_benchmarks(args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    thrash = results["thrash"]
    phases = thrash["phases"]
    print(f"thrash:      best {thrash['wall_s_best'] * 1e3:.1f}ms  "
          f"p50 {thrash['wall_s_p50'] * 1e3:.1f}ms  "
          f"mean {thrash['wall_s_mean'] * 1e3:.1f}ms  "
          f"({thrash['translations']} translations, "
          f"{thrash['evictions']} evictions)")
    comfy = results["comfortable"]
    print(f"comfortable: best {comfy['wall_s_best'] * 1e3:.1f}ms  "
          f"p50 {comfy['wall_s_p50'] * 1e3:.1f}ms  "
          f"mean {comfy['wall_s_mean'] * 1e3:.1f}ms")
    print(f"miss-service cycles (thrash): "
          f"serve {phases['miss_serve_cycles']}, "
          f"link {phases['miss_link_cycles']}, "
          f"install {phases['miss_install_cycles']}, "
          f"patch {phases['miss_patch_cycles']}")
    for row in results["prefetch_sweep"]:
        print(f"prefetch depth {row['depth']}: "
              f"miss-svc {row['miss_service_cycles']} cycles, "
              f"{row['link_exchanges']} exchanges, "
              f"{row['prefetch_hits']} hits, "
              f"{row['wasted_prefetch_bytes']}B wasted")
    print(f"wrote {args.out}")

    if args.floor_ms is not None:
        best_ms = thrash["wall_s_best"] * 1e3
        if best_ms > args.floor_ms:
            print(f"FAIL: thrash best {best_ms:.1f}ms exceeds floor "
                  f"{args.floor_ms:.0f}ms", file=sys.stderr)
            return 1
        print(f"floor check OK: {best_ms:.1f}ms <= {args.floor_ms:.0f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
