"""§2.4: 60 application bytes of network overhead per chunk."""

from conftest import save_result

from repro.eval import netcost, render_netcost


def test_netcost(benchmark):
    result = benchmark.pedantic(netcost, kwargs={"scale": 0.05},
                                rounds=1, iterations=1)
    save_result("netcost", render_netcost(result))
    assert result.exchanges > 0
    # the reproduced measurement: exactly 60 bytes per exchange
    assert result.overhead_per_exchange == 60.0
    assert result.mean_chunk_payload > 0
