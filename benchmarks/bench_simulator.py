"""Host-side performance of the substrate itself (pytest-benchmark
with real rounds): interpreter throughput and SoftCache overheads.

These are the only benchmarks measuring *host* time rather than
simulated results; they guard against performance regressions in the
interpreter and the miss path, which bound how large the reproduced
experiments can be.
"""

import pytest

from repro.net import LOCAL_LINK
from repro.sim import Machine
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def image():
    return build_workload("sensor", 0.05)


def test_interpreter_throughput(benchmark, image):
    def run():
        machine = Machine(image)
        machine.run()
        return machine.cpu.icount

    icount = benchmark(run)
    rate = icount / benchmark.stats["mean"]
    print(f"\ninterpreter: {rate / 1e6:.2f} M simulated instr/s")
    # Regression floor: 2x the measured mean of the per-instruction
    # interpreter this replaced (~1.46 M instr/s); the superblock
    # interpreter runs ~4.2 M instr/s on the reference container.
    assert rate > 3_000_000


def test_traced_run_overhead(benchmark, image):
    def run():
        machine = Machine(image)
        machine.run_traced(500_000_000)
        return machine.cpu.icount

    benchmark(run)


def test_softcache_run(benchmark, image):
    def run():
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=8192, link=LOCAL_LINK,
            record_timeline=False))
        return system.run().instructions

    benchmark(run)


def test_softcache_thrash_run(benchmark, image):
    def run():
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=768, link=LOCAL_LINK,
            record_timeline=False))
        return system.run().instructions

    benchmark(run)
