"""Section 3 / Figure 10: the software data-cache design."""

from conftest import save_result

from repro.eval import dcache_eval, render_dcache


def test_dcache(benchmark):
    rows = benchmark.pedantic(
        dcache_eval, kwargs={"scale": 0.05,
                             "dcache_sizes": (512, 2048),
                             "predictions": ("none", "last")},
        rounds=1, iterations=1)
    save_result("dcache", render_dcache(rows))
    by_key = {(r.prediction, r.dcache_size): r for r in rows}
    none_small = by_key[("none", 512)]
    last_small = by_key[("last", 512)]
    last_big = by_key[("last", 2048)]
    # prediction converts slow hits into fast hits and saves time
    assert last_small.fast_hits > 0 and none_small.fast_hits == 0
    assert last_small.relative_time < none_small.relative_time
    # capacity reduces misses
    assert last_big.misses <= last_small.misses
    # the guaranteed latency: observed slow hits never exceed the bound
    for row in rows:
        assert row.worst_slow_hit_cycles <= row.slow_hit_bound_cycles
    # constant-address scalars were specialized (Fig 10 top)
    assert all(r.pinned_specializations > 0 for r in rows)
