"""Figure 9: normalized dynamic footprint of the ARM benchmarks."""

import os

from conftest import save_result

from repro.eval import PAPER_FIG9, fig9, render_fig9


def test_fig9(benchmark):
    bars = benchmark.pedantic(
        fig9, kwargs={"scale": 0.25, "processes": os.cpu_count()},
        rounds=1, iterations=1)
    save_result("fig9", render_fig9(bars))
    assert [b.workload for b in bars] == list(PAPER_FIG9)
    for bar in bars:
        # paper: 0.07-0.13 (7-14x); allow a moderately wider band for
        # our smaller statically linked library
        assert 0.05 <= bar.normalized_footprint <= 0.22, bar.workload
        assert bar.reduction_factor >= 4.5, bar.workload
        # the hot set is a handful of functions, not the whole program
        assert len(bar.hot_functions) <= 8, bar.workload
