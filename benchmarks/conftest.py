"""Benchmark-suite helpers: result persistence and shared scales.

Every benchmark regenerates one table or figure of the paper, asserts
its qualitative shape, and writes the rendered text into
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload scale used across benchmarks: large enough for stable
#: shapes, small enough that the whole suite runs in minutes.
BENCH_SCALE = 0.2


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
