"""Superblock vs per-instruction dispatch.

Same simulated program, same architectural results — the only thing
measured here is host-side interpreter speed and what the fuser did:
how much of the dynamic instruction stream runs inside fused blocks.
"""

import pytest
from conftest import save_result

from repro.sim import Machine, MachineConfig
from repro.workloads import build_workload

#: sensor (the throughput reference) plus a loop-heavy DSP kernel.
WORKLOADS = {"sensor": 0.05, "adpcm_enc": 0.05}


@pytest.mark.parametrize("superblocks", [False, True],
                         ids=["per_insn", "superblock"])
@pytest.mark.parametrize("name", list(WORKLOADS))
def test_dispatch_throughput(benchmark, name, superblocks):
    image = build_workload(name, WORKLOADS[name])

    def run():
        machine = Machine(image, MachineConfig(superblocks=superblocks))
        machine.run()
        return machine

    machine = benchmark(run)
    rate = machine.cpu.icount / benchmark.stats["mean"]
    mode = "superblock" if superblocks else "per-insn"
    print(f"\n{name} [{mode}]: {rate / 1e6:.2f} M simulated instr/s")


def test_fusion_stats():
    lines = []
    for name, scale in WORKLOADS.items():
        machine = Machine(build_workload(name, scale),
                          MachineConfig(superblocks=True))
        machine.run()
        stats = machine.cpu.sb_stats
        assert stats.fused_blocks > 0, name
        assert stats.mean_block_length >= 2.0, name
        lines.append(
            f"  {name}: {stats.fused_blocks} fused blocks, "
            f"{stats.fused_instructions} fused instructions "
            f"(mean {stats.mean_block_length:.1f}/block), "
            f"{stats.single_closures} single closures")
    save_result("superblock_fusion",
                "Superblock fusion statistics:\n" + "\n".join(lines))
