"""Interpreter dispatch tiers: per-instruction vs closure vs JIT.

Same simulated program, same architectural results — the only thing
measured here is host-side interpreter speed per tier and what the
fuser/JIT did: how much of the dynamic instruction stream runs inside
fused blocks, and how much of that was promoted to generated-source
JIT functions.

Two entry points:

* under pytest-benchmark (CI bench-smoke), ``test_dispatch_throughput``
  times each tier per workload;
* standalone, ``python benchmarks/bench_superblock.py`` writes
  ``BENCH_jit.json`` with per-tier wall times, simulated-instruction
  throughput and the JIT counters (promotions, codegen vs cache hits),
  asserting cycle-identity across tiers as it goes.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro.sim import Machine, MachineConfig  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

#: sensor (the throughput reference) plus a loop-heavy DSP kernel.
WORKLOADS = {"sensor": 0.05, "adpcm_enc": 0.05}

#: tier name -> MachineConfig kwargs.
TIERS = {
    "per_insn": {"superblocks": False},
    "closure": {"superblocks": True, "jit": "off"},
    "jit_hot": {"superblocks": True, "jit": "hot"},
    "jit_all": {"superblocks": True, "jit": "all"},
}


@pytest.mark.parametrize("tier", ["per_insn", "closure", "jit_all"])
@pytest.mark.parametrize("name", list(WORKLOADS))
def test_dispatch_throughput(benchmark, name, tier):
    image = build_workload(name, WORKLOADS[name])
    kwargs = TIERS[tier]

    def run():
        machine = Machine(image, MachineConfig(**kwargs))
        machine.run()
        return machine

    machine = benchmark(run)
    rate = machine.cpu.icount / benchmark.stats["mean"]
    print(f"\n{name} [{tier}]: {rate / 1e6:.2f} M simulated instr/s")


def test_fusion_stats():
    from conftest import save_result
    lines = []
    for name, scale in WORKLOADS.items():
        machine = Machine(build_workload(name, scale),
                          MachineConfig(superblocks=True, jit="hot"))
        machine.run()
        stats = machine.cpu.sb_stats
        jstats = machine.cpu.jit_stats
        assert stats.fused_blocks > 0, name
        assert stats.mean_block_length >= 2.0, name
        assert jstats.jit_blocks > 0, name
        lines.append(
            f"  {name}: {stats.fused_blocks} fused blocks, "
            f"{stats.fused_instructions} fused instructions "
            f"(mean {stats.mean_block_length:.1f}/block), "
            f"{stats.single_closures} single closures, "
            f"{jstats.jit_promotions} JIT promotions covering "
            f"{jstats.jit_instructions} instructions")
    save_result("superblock_fusion",
                "Superblock fusion statistics:\n" + "\n".join(lines))


# -- standalone mode: BENCH_jit.json ----------------------------------


def _timed_tier(image, kwargs: dict, repeat: int) -> dict:
    """Best/median wall clock for one tier (one untimed warm-up)."""
    Machine(image, MachineConfig(**kwargs)).run()  # warm-up, untimed
    walls = []
    machine = None
    for _ in range(repeat):
        machine = Machine(image, MachineConfig(**kwargs))
        t0 = time.perf_counter()
        machine.run()
        walls.append(time.perf_counter() - t0)
    cpu = machine.cpu
    js = cpu.jit_stats
    return {
        "wall_s_best": min(walls),
        "wall_s_p50": statistics.median(walls),
        "wall_s_mean": sum(walls) / len(walls),
        "instructions": cpu.icount,
        "cycles": cpu.cycles,
        "m_instr_per_s": cpu.icount / min(walls) / 1e6,
        "jit": {
            "blocks": js.jit_blocks,
            "instructions": js.jit_instructions,
            "promotions": js.jit_promotions,
            "codegen": js.jit_codegen,
            "mem_hits": js.jit_mem_hits,
            "disk_hits": js.jit_disk_hits,
            "disk_stores": js.jit_disk_stores,
        },
    }


def run_benchmarks(repeat: int = 3) -> dict:
    results: dict = {
        "schema": "BENCH_jit/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
    }
    for name, scale in WORKLOADS.items():
        image = build_workload(name, scale)
        tiers = {}
        baseline = None
        for tier, kwargs in TIERS.items():
            row = _timed_tier(image, kwargs, repeat)
            sig = (row["instructions"], row["cycles"])
            if baseline is None:
                baseline = sig
            elif sig != baseline:
                raise AssertionError(
                    f"{name}/{tier}: simulated counters diverged "
                    f"{sig} != {baseline} — tiers must be "
                    f"cycle-identical")
            tiers[tier] = row
        base = tiers["per_insn"]["wall_s_best"]
        for row in tiers.values():
            row["speedup_vs_per_insn"] = base / row["wall_s_best"]
        results["workloads"][name] = tiers
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=Path, default=Path("BENCH_jit.json"))
    args = parser.parse_args(argv)

    results = run_benchmarks(args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    for name, tiers in results["workloads"].items():
        print(f"{name}:")
        for tier, row in tiers.items():
            jit = row["jit"]
            extra = ""
            if jit["blocks"]:
                extra = (f"  [jit: {jit['blocks']} blocks, "
                         f"{jit['codegen']} codegen, "
                         f"{jit['mem_hits']} mem hits, "
                         f"{jit['disk_hits']} disk hits]")
            print(f"  {tier:9s} best {row['wall_s_best'] * 1e3:7.1f}ms  "
                  f"{row['m_instr_per_s']:6.2f} M instr/s  "
                  f"{row['speedup_vs_per_insn']:.2f}x{extra}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
