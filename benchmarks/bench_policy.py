"""Replacement-policy benchmark: per-policy thrash floor + ablation.

Two halves, written to ``BENCH_policy.json`` for CI to archive:

* **Per-policy thrash gate** — the bench_misspath thrash workload
  (sensor, 768B tcache, local link, ``prefetch_depth 0``) run once
  per policy.  At depth 0 no admission path executes and trrip ships
  with ``preemptive_flush`` off, so every eviction-path policy must
  land on the same simulated counts as fifo (asserted) and under the
  same ``--floor-ms`` wall-clock floor: the policy layer may not tax
  the seed hot path.  ``flush`` is reported but not floor-gated — it
  re-translates ~46% more chunks by design and has never been inside
  the fifo-path floor.
* **Policy × depth ablations** — the fig8-per-policy sweep
  (:func:`repro.eval.fig8_policy_ablation`: adpcm_enc in its paging
  regime, proc granularity) plus a sensor block-granularity sweep on
  a 1KiB tcache, both on the networked link at depths 0/2/4.  The
  winner block records, per workload, the lowest-cycle cell at depth
  ≥ 2 and the admission policy that most reduces shipped-then-wasted
  prefetch traffic vs fifo at the same depth; the default policy
  only changes if one policy wins cycles on *both* workloads.

Usage::

    python benchmarks/bench_policy.py [--repeat N] [--out PATH]
                                      [--floor-ms MS] [--scale S]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval import fig8_policy_ablation  # noqa: E402
from repro.net import LOCAL_LINK  # noqa: E402
from repro.softcache import (  # noqa: E402
    SoftCacheConfig,
    SoftCacheSystem,
    policy_names,
)
from repro.workloads import build_workload  # noqa: E402

#: The seed thrash counters (sensor @ 0.05, 768B, block, local link).
#: Every policy must reproduce these exactly at prefetch_depth 0 —
#: same goldens as tests/test_eviction_equivalence.py.
_THRASH_GOLDEN = {"translations": 2040, "evictions": 2018,
                  "cycles": 1_622_021}


def _thrash_per_policy(image, policies, repeat: int) -> dict:
    out = {}
    for policy in policies:
        config = SoftCacheConfig(tcache_size=768, link=LOCAL_LINK,
                                 policy=policy, record_timeline=False)
        SoftCacheSystem(image, config).run()  # warm-up, untimed
        walls = []
        system = report = None
        for _ in range(repeat):
            system = SoftCacheSystem(image, config)
            t0 = time.perf_counter()
            report = system.run()
            walls.append(time.perf_counter() - t0)
        stats = system.stats
        row = {
            "wall_s_best": min(walls),
            "wall_s_p50": statistics.median(walls),
            "cycles": report.cycles,
            "translations": stats.translations,
            "evictions": stats.evictions,
            "flushes": stats.flushes,
        }
        if policy == "fifo":
            for key, want in _THRASH_GOLDEN.items():
                got = row[key]
                if got != want:
                    raise SystemExit(
                        f"fifo thrash {key}={got} != golden {want}: "
                        f"the policy object diverged from the seed "
                        f"path")
        out[policy] = row
    return out


def _sensor_sweep(image, policies,
                  depths=(0, 2, 4)) -> list[dict]:
    """Block-granularity admission sweep: sensor on a 1KiB tcache."""
    from repro.net import LinkModel
    from repro.profiling import temperature_for_image

    temperature = (temperature_for_image(image)
                   if "trrip" in policies else None)
    rows = []
    for policy in policies:
        params = ({"temperature": temperature}
                  if policy == "trrip" else None)
        for depth in depths:
            system = SoftCacheSystem(image, SoftCacheConfig(
                tcache_size=1024, policy=policy, policy_params=params,
                prefetch_depth=depth, link=LinkModel(),
                record_timeline=False))
            report = system.run()
            s = system.stats
            rows.append({
                "policy": policy, "depth": depth,
                "cycles": report.cycles,
                "prefetch_installs": s.prefetch_installs,
                "prefetch_hits": s.prefetch_hits,
                "prefetch_drops": s.prefetch_drops,
                "prefetch_dropped_bytes": s.prefetch_dropped_bytes,
                "wasted_prefetch_bytes": s.wasted_prefetch_bytes,
                "policy_prefetch_rejects": s.policy_prefetch_rejects,
                "link_bytes": system.link_stats.total_bytes,
            })
    return rows


def _winner(rows: list[dict]) -> dict:
    """Per-workload verdict: cycle winner + best waste reducer.

    *Shipped-then-wasted* = dropped bytes (paid on the link, thrown
    away at install) + wasted bytes (installed, evicted untouched) —
    the pollution the admission policies exist to cut.
    """
    fifo_at = {r["depth"]: r for r in rows if r["policy"] == "fifo"}
    deep = [r for r in rows if r["depth"] >= 2]
    by_cycles = min(deep, key=lambda r: r["cycles"])
    best_saving, reducer = 0, None
    for r in deep:
        if r["policy"] in ("fifo", "flush"):
            continue
        base = fifo_at[r["depth"]]
        saving = ((base["prefetch_dropped_bytes"]
                   + base["wasted_prefetch_bytes"])
                  - (r["prefetch_dropped_bytes"]
                     + r["wasted_prefetch_bytes"]))
        if saving > best_saving:
            best_saving, reducer = saving, r
    verdict = {
        "cycles_winner": {"policy": by_cycles["policy"],
                          "depth": by_cycles["depth"],
                          "cycles": by_cycles["cycles"]},
        "waste_reducer": None,
    }
    if reducer is not None:
        base = fifo_at[reducer["depth"]]
        verdict["waste_reducer"] = {
            "policy": reducer["policy"],
            "depth": reducer["depth"],
            "saved_bytes_vs_fifo": best_saving,
            "drops_vs_fifo": (reducer["prefetch_drops"]
                              - base["prefetch_drops"]),
            "cycles_vs_fifo": reducer["cycles"] - base["cycles"],
            "rejects": reducer["policy_prefetch_rejects"],
        }
    return verdict


def run_benchmarks(repeat: int = 3, scale: float = 0.35) -> dict:
    policies = policy_names()
    image = build_workload("sensor", 0.05)
    results: dict = {
        "schema": "BENCH_policy/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "policies": list(policies),
    }
    results["thrash"] = _thrash_per_policy(image, policies, repeat)

    adpcm_rows = [vars(r) for r in fig8_policy_ablation(scale=scale)]
    sensor_rows = _sensor_sweep(image, policies)
    results["ablation_adpcm"] = adpcm_rows
    results["ablation_sensor"] = sensor_rows
    verdicts = {"adpcm_enc": _winner(adpcm_rows),
                "sensor": _winner(sensor_rows)}
    cycle_winners = {v["cycles_winner"]["policy"]
                     for v in verdicts.values()}
    # a challenger becomes default only by winning cycles everywhere
    default = (cycle_winners.pop()
               if len(cycle_winners) == 1
               and cycle_winners != {"flush"} else "fifo")
    results["winner"] = {"per_workload": verdicts, "default": default}
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_policy.json"))
    parser.add_argument("--floor-ms", type=float, default=None,
                        help="fail if any policy's best thrash run "
                             "exceeds this")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="adpcm_enc scale for the ablation sweep")
    args = parser.parse_args(argv)

    results = run_benchmarks(args.repeat, args.scale)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    failed = False
    for policy, row in results["thrash"].items():
        best_ms = row["wall_s_best"] * 1e3
        line = (f"thrash[{policy:>9}]: best {best_ms:.1f}ms  "
                f"p50 {row['wall_s_p50'] * 1e3:.1f}ms  "
                f"({row['translations']} translations, "
                f"{row['evictions']} evictions, "
                f"{row['flushes']} flushes)")
        if policy == "flush":
            line += "  (not floor-gated: drop-everything by design)"
        elif args.floor_ms is not None and best_ms > args.floor_ms:
            line += f"  FAIL > {args.floor_ms:.0f}ms floor"
            failed = True
        print(line)
    for label in ("ablation_adpcm", "ablation_sensor"):
        for row in results[label]:
            print(f"{label} {row['policy']:>9} depth {row['depth']}: "
                  f"{row['cycles']} cycles, "
                  f"{row['prefetch_drops']} drops, "
                  f"{row['prefetch_dropped_bytes']}B dropped, "
                  f"{row['wasted_prefetch_bytes']}B wasted, "
                  f"{row['policy_prefetch_rejects']} rejected")
    winner = results["winner"]
    for workload, verdict in winner["per_workload"].items():
        cw = verdict["cycles_winner"]
        line = (f"{workload}: cycles winner {cw['policy']} at depth "
                f"{cw['depth']}")
        wr = verdict["waste_reducer"]
        if wr is not None:
            line += (f"; waste reducer {wr['policy']} at depth "
                     f"{wr['depth']} "
                     f"(-{wr['saved_bytes_vs_fifo']}B shipped-wasted, "
                     f"{wr['drops_vs_fifo']:+d} drops, "
                     f"{wr['cycles_vs_fifo']:+d} cycles vs fifo, "
                     f"{wr['rejects']} rejected)")
        print(line)
    print(f"default policy: {winner['default']}")
    print(f"wrote {args.out}")
    if failed:
        print("FAIL: a policy regressed the thrash floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
