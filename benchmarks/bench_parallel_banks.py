"""§4 capability 3: multi-bank parallel data access."""

from conftest import save_result

from repro.dcache import DataCacheConfig
from repro.eval.render import ascii_table
from repro.net import LOCAL_LINK
from repro.power import parallel_access_analysis
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


def test_parallel_banks(benchmark):
    def run():
        image = build_workload("mpeg2enc", 0.1)
        config = SoftCacheConfig(
            tcache_size=32 * 1024, link=LOCAL_LINK,
            data_cache=DataCacheConfig(dcache_size=4096,
                                       record_access_tags=True))
        system = SoftCacheSystem(image, config)
        system.run()
        tags = system.dcache.access_tags
        return [parallel_access_analysis(tags, nbanks)
                for nbanks in (2, 4, 8)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[r.nbanks, r.accesses, r.interleaved_conflicts,
             r.optimized_conflicts,
             f"{100 * r.conflict_reduction:.0f}%",
             f"{r.speedup:.3f}x"] for r in results]
    save_result("parallel_banks", ascii_table(
        ["banks", "accesses", "interleaved conflicts",
         "optimized conflicts", "reduction", "mem speedup"],
        rows,
        title="§4: SoftCache-directed data placement across SRAM "
              "banks (mpeg2enc dcache trace)"))
    for result in results:
        # runtime placement removes most adjacent bank conflicts and
        # buys real memory parallelism
        assert result.conflict_reduction > 0.5
        assert result.speedup > 1.05
