#!/usr/bin/env python
"""Quickstart: compile a program, run it natively and under the
SoftCache, and compare.

The program is written in MinC (the bundled C-like language), compiled
to the repro RISC ISA, and executed twice: once fetching straight from
"remote" memory (the ideal baseline) and once with remote text
unmapped, so every instruction must flow through the translation cache
via dynamic binary rewriting.
"""

from repro.lang import compile_program
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, run_softcache

SOURCE = r"""
int weights[16];

int dot(int *a, int *b, int n) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i++) acc += a[i] * b[i];
    return acc;
}

int main(void) {
    int i;
    int signal[16];
    for (i = 0; i < 16; i++) {
        weights[i] = (i * 7) % 16 - 8;
        signal[i] = sin_q15((i * 16) & 255) >> 8;
    }
    print_labeled("dot=", dot(signal, weights, 16));
    return 0;
}
"""


def main() -> None:
    image = compile_program(SOURCE, "quickstart")
    print(f"linked image: {len(image.text)} bytes of text, "
          f"{len(image.procs)} procedures\n")

    native = run_native(image)
    print("native run  :", native.output_text.strip(),
          f"({native.cpu.icount} instructions, "
          f"{native.cpu.cycles} cycles)")

    config = SoftCacheConfig(tcache_size=8 * 1024)
    report, system = run_softcache(image, config)
    stats = system.stats
    print("softcache   :", report.output.strip(),
          f"({report.instructions} instructions, "
          f"{report.cycles} cycles)")
    assert report.output == native.output_text

    print(f"\ntranslation cache: {stats.translations} chunks "
          f"translated, {stats.patches} branch words patched, "
          f"{stats.branch_miss_traps} branch misses, "
          f"{stats.ret_miss_traps} return misses")
    print(f"network: {system.link_stats.exchanges} chunk exchanges, "
          f"{system.link_stats.total_bytes} app bytes "
          f"({system.link_stats.overhead_per_exchange():.0f}B overhead "
          f"per exchange)")
    print(f"relative execution time: "
          f"{report.cycles / native.cpu.cycles:.2f}x "
          f"(startup-dominated on a program this small)")


if __name__ == "__main__":
    main()
