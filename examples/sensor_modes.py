#!/usr/bin/env python
"""The paper's Figure 2 scenario: a multi-mode sensor node.

The sensor's code has four modes — initialization, calibration,
daytime, nighttime — but only one is active at a time, so local memory
can be sized to the largest single mode instead of the whole program.
This script runs the sensor workload under SoftCaches sized (a) below
one mode, (b) to one mode, and (c) to the whole program, and shows the
translation/eviction behavior the figure predicts: with memory for one
mode, misses happen only at mode *transitions*, and within a mode the
fully associative tcache guarantees a 100% hit rate.
"""

from repro.net import LOCAL_LINK
from repro.profiling import profile_image
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


def main() -> None:
    image = build_workload("sensor", scale=0.6)
    native = run_native(image)
    profile = profile_image(image)

    day = profile.entry_named("day_step")
    night = profile.entry_named("night_step")
    print("mode sizes (bytes):")
    for name in ("mode_init", "mode_calibrate", "day_step",
                 "night_step"):
        print(f"  {name:16s} {image.proc_named(name).size}")
    print(f"  whole image      {image.static_text_size}\n")

    # size local memory to one performance-critical mode + the shared
    # helpers it calls (the figure's 'minimum memory required')
    helpers = sum(image.proc_named(n).size for n in
                  ("sin_q15", "rand", "abs_i", "clamp_i", "main",
                   "_start", "isqrt"))
    one_mode = max(day.proc.size, night.proc.size) + helpers + 256

    for label, size in (("below one mode", one_mode // 2),
                        ("one mode", one_mode),
                        ("whole program", image.static_text_size * 2)):
        config = SoftCacheConfig(tcache_size=size, link=LOCAL_LINK)
        system = SoftCacheSystem(image, config)
        report = system.run()
        assert report.output == native.output_text
        stats = system.stats
        print(f"{label:15s} ({size:6d}B): "
              f"{stats.translations:5d} translations, "
              f"{stats.evictions + stats.blocks_flushed:5d} evictions, "
              f"rel. time "
              f"{report.cycles / native.cpu.cycles:.2f}x")

    print("\nWith memory for one mode, translations stay near the")
    print("whole-program count: chunks are (re)loaded only when the")
    print("sensor switches mode, and each mode then runs at full")
    print("speed with zero cache checks - Figure 2's promise.")


if __name__ == "__main__":
    main()
