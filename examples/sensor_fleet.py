#!/usr/bin/env python
"""Figure 1's deployment: a network of sensors fed by one server.

Simulates fleets of identical sensor nodes booting against a single
memory controller over a shared 10 Mbps uplink, and shows the two
server-side effects the paper's scenario implies: chunk rewriting is
done once for the whole fleet (the MC chunk cache), and simultaneous
boots queue on the uplink while staggered boots do not.
"""

from repro.fleet import simulate_fleet
from repro.softcache import SoftCacheConfig
from repro.workloads import build_workload


def main() -> None:
    image = build_workload("sensor", scale=0.1)
    config = SoftCacheConfig(tcache_size=8 * 1024)

    print(f"{'sensors':>8} {'boot':>10} {'MC rewrites':>12} "
          f"{'shared':>7} {'link util':>10} {'mean queue':>11} "
          f"{'max queue':>10}")
    for n in (1, 4, 16):
        for stagger, label in ((0.0, "together"), (0.05, "staggered")):
            fleet = simulate_fleet(image, n, config, stagger_s=stagger)
            print(f"{n:8d} {label:>10} "
                  f"{fleet.mc_chunks_built:12d} "
                  f"{100 * fleet.chunk_cache_sharing:6.0f}% "
                  f"{100 * fleet.link_utilization:9.2f}% "
                  f"{fleet.mean_queue_delay_s * 1e6:9.1f}us "
                  f"{fleet.max_queue_delay_s * 1e6:8.1f}us")

    print("\nThe server rewrites each chunk once no matter how many")
    print("sensors it feeds, and a simultaneous fleet boot is the only")
    print("moment the shared uplink queues - the paper's scenario of a")
    print("device that is 'nearly useless without the communication")
    print("connection' scales on the server side.")


if __name__ == "__main__":
    main()
