#!/usr/bin/env python
"""Hot-code identification and CC memory sizing (Figures 8/9 method).

Profiles each ARM benchmark with the built-in gprof equivalent, shows
the flat profile, the hot set by the paper's 90%-of-runtime rule, and
the resulting normalized dynamic footprint — then verifies the sizing
empirically by running the workload under a SoftCache of exactly the
hot-set size and checking that steady-state paging vanishes.
"""

from repro.profiling import profile_image
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import ARM_BENCHMARKS, build_workload


def main() -> None:
    for name in ARM_BENCHMARKS:
        image = build_workload(name, scale=0.15, arm_profile=True)
        profile = profile_image(image)
        hot = profile.hot_procs(0.90)
        print("=" * 60)
        print(f"{name}: {profile.total_instructions} instructions")
        print(profile.report(top=6))
        print(f"hot set (90% rule): {[e.name for e in hot]}")
        print(f"hot bytes {profile.hot_code_bytes():5d} / static "
              f"{image.static_text_size} = "
              f"{profile.normalized_dynamic_footprint():.3f} "
              f"({image.static_text_size / profile.hot_code_bytes():.1f}x"
              f" reduction)")

        # verify: a tcache sized generously above the touched set pages
        # only at startup
        touched = sum(e.proc.size for e in profile.entries)
        config = SoftCacheConfig(tcache_size=touched + 512,
                                 granularity="proc")
        system = SoftCacheSystem(image, config)
        system.run()
        print(f"verification: tcache of {touched + 512}B -> "
              f"{system.stats.evictions} evictions "
              f"(steady state fits)\n")


if __name__ == "__main__":
    main()
