#!/usr/bin/env python
"""The cell-phone scenario: ADPCM streaming on a networked client.

A phone-like embedded client runs the ADPCM encoder under the ARM-style
SoftCache (procedure chunks + redirectors) while connected to its
"tower" over a 10 Mbps link.  The script sweeps the client's code
memory and reports paging rate, network traffic, and time overhead —
Figure 8's experiment viewed as a provisioning question: how much RAM
does the handset need?
"""

from repro.eval.fig8 import derive_memories
from repro.net import LinkModel
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


def main() -> None:
    scale = 0.25
    image = build_workload("adpcm_enc", scale, arm_profile=True)
    native = run_native(image)
    low, fit, roomy = derive_memories("adpcm_enc", scale)
    print(f"static image: {image.static_text_size}B; derived client "
          f"memories: {low}B / {fit}B / {roomy}B\n")
    print(f"{'memory':>8} {'evict/s':>9} {'net KB':>8} "
          f"{'overhead/exchange':>18} {'rel time':>9}")
    for memory in (low, fit, roomy):
        config = SoftCacheConfig(
            tcache_size=memory, granularity="proc", policy="fifo",
            link=LinkModel(bandwidth_bps=10e6, latency_s=150e-6))
        system = SoftCacheSystem(image, config)
        report = system.run()
        assert report.output == native.output_text
        evict_rate = (len(system.stats.eviction_timestamps)
                      / (report.seconds or 1))
        net = system.link_stats
        print(f"{memory:7d}B {evict_rate:9.0f} "
              f"{net.total_bytes / 1024:8.1f} "
              f"{net.overhead_per_exchange():17.0f}B "
              f"{report.cycles / native.cpu.cycles:9.2f}")
    print("\nAt the fitting size the handset pages only when the call")
    print("ends (terminal statistics), and every chunk exchange costs")
    print("exactly 60 application bytes of protocol overhead (§2.4).")

    # --- multilevel: put a chunk cache in the cell tower -------------
    from repro.net import with_hub
    print("\nwith a chunk cache at the tower (origin 10ms/2Mbps away):")
    slow_origin = LinkModel(bandwidth_bps=2e6, latency_s=10e-3)
    for capacity, label in ((0, "no tower cache"),
                            (64 * 1024, "64KB tower cache")):
        config = SoftCacheConfig(tcache_size=low, granularity="proc",
                                 policy="fifo")
        system = SoftCacheSystem(image, config)
        hub = with_hub(system, far=slow_origin,
                       capacity_bytes=capacity)
        report = system.run()
        assert report.output == native.output_text
        print(f"  {label:18s}: rel time "
              f"{report.cycles / native.cpu.cycles:6.2f}x, hub hit "
              f"rate {100 * hub.hub_stats.hit_rate:4.0f}%, origin "
              f"fetches {hub.hub_stats.origin_fetches}")


if __name__ == "__main__":
    main()
