#!/usr/bin/env python
"""The Section-3 software data cache, end to end.

Runs a pointer-walking workload in full-system mode (instruction AND
data caching in software) and shows the D-cache design's moving parts:
pinned constant-address globals (Fig 10 top), per-site prediction with
fast hits (Fig 10 bottom), slow hits via binary search — whose worst
case is the design's *guaranteed* on-chip latency — and stack-cache
presence checks with frame spill/refill.
"""

from repro.dcache import DataCacheConfig
from repro.lang import compile_program
from repro.net import LOCAL_LINK
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem

SOURCE = r"""
int config_scale = 5;       // pinned scalar: specialized accesses
int histogram[128];
int matrix[256];

int deep(int n, int *acc) {
    int local[4];
    local[0] = n;
    *acc += local[0];
    if (n > 0) return deep(n - 1, acc);
    return *acc;
}

int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 256; i++) matrix[i] = (i * 13) & 255;
    // sequential sweep: 'last block' prediction hits
    for (i = 0; i < 256; i++) acc += matrix[i] * config_scale;
    // strided histogram: prediction misses -> slow hits
    for (i = 0; i < 256; i++) histogram[matrix[i] & 127]++;
    // deep recursion: stack cache spills and refills frames
    deep(40, &acc);
    print_labeled("acc=", acc);
    print_labeled("h0=", histogram[0]);
    return 0;
}
"""


def main() -> None:
    image = compile_program(SOURCE, "dcache_demo")
    native = run_native(image)
    print("native:", native.output_text.strip().replace("\n", " "))

    for prediction in ("none", "last", "stride"):
        config = SoftCacheConfig(
            tcache_size=32 * 1024, link=LOCAL_LINK,
            data_cache=DataCacheConfig(dcache_size=1024, block_size=16,
                                       scache_size=256,
                                       prediction=prediction))
        system = SoftCacheSystem(image, config)
        report = system.run()
        assert report.output == native.output_text
        stats = system.dcache.stats
        rw = system.mc.data_rewriter.stats
        print(f"\nprediction={prediction}")
        print(f"  pinned specializations : {rw.pinned_specializations} "
              f"sites (zero-check accesses)")
        print(f"  fast hits              : {stats.fast_hits}")
        print(f"  slow hits              : {stats.slow_hits} "
              f"(worst {stats.worst_slow_hit_cycles} cycles; design "
              f"bound {system.dcache.slow_hit_bound_cycles()})")
        print(f"  misses                 : {stats.misses} "
              f"({stats.writebacks} writebacks)")
        print(f"  prediction accuracy    : "
              f"{100 * stats.prediction_accuracy():.1f}%")
        print(f"  scache enter/exit      : {stats.scache_enters}/"
              f"{stats.scache_exits} "
              f"(spills {stats.scache_spills}, refills "
              f"{stats.scache_refills})")
        print(f"  relative time          : "
              f"{report.cycles / native.cpu.cycles:.2f}x")


if __name__ == "__main__":
    main()
